package minidb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pperfgrid/internal/minidb/segment"
)

// Disk-engine options tuned for tests: tiny seal threshold so small
// tables exercise the block path, no background compactor so seals and
// checkpoints happen exactly where the test says.
func testDiskOpts(dir string) Options {
	return Options{
		Dir:                dir,
		SealRows:           vecBlockSize,
		DisableAutoCompact: true,
	}
}

func openDisk(t *testing.T, opts Options) *Database {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// dump renders every table's full contents (insertion order) plus schema
// as one string, the byte-identical comparison key for differential
// tests.
func dump(t *testing.T, db *Database) string {
	t.Helper()
	var b strings.Builder
	for _, name := range db.TableNames() {
		tbl, err := db.table(name)
		if err != nil {
			t.Fatalf("table %s: %v", name, err)
		}
		fmt.Fprintf(&b, "table %s cols=%v\n", name, tbl.Columns)
		rs, err := db.Query("SELECT * FROM " + name)
		if err != nil {
			t.Fatalf("dump %s: %v", name, err)
		}
		for _, row := range rs.Rows {
			for _, v := range row {
				fmt.Fprintf(&b, "%d:%v|", v.Kind, v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func seedRuns(t *testing.T, db *Database, n int) {
	t.Helper()
	db.MustExec(`CREATE TABLE runs (id INT, app TEXT, nprocs INT, gflops FLOAT)`)
	rows := make([][]Value, 0, n)
	for i := 0; i < n; i++ {
		app := Text(fmt.Sprintf("app-%d", i%7))
		var gf Value
		if i%13 == 0 {
			gf = Null()
		} else {
			gf = Float(float64(i) * 1.5)
		}
		rows = append(rows, []Value{Int(int64(i)), app, Int(int64(i % 64)), gf})
	}
	if err := db.InsertRows("runs", rows); err != nil {
		t.Fatalf("seed: %v", err)
	}
}

func TestDiskOpenCloseReopen(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	seedRuns(t, db, 100)
	want := dump(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2 := openDisk(t, testDiskOpts(dir))
	if got := dump(t, db2); got != want {
		t.Fatalf("reopen mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if db2.Engine().Kind() != "disk" {
		t.Fatalf("engine kind = %q", db2.Engine().Kind())
	}
}

func TestDiskSealCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	seedRuns(t, db, 1000) // 3 full blocks + 232-row tail
	if err := db.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	st := db.EngineStats()
	if st.SealedRows != 768 || st.TailRows != 232 {
		t.Fatalf("sealed=%d tail=%d, want 768/232", st.SealedRows, st.TailRows)
	}
	want := dump(t, db)

	// Reopen without a checkpoint: replay must rebuild blocks from 'I'+'S'.
	db.Close()
	db = openDisk(t, testDiskOpts(dir))
	if got := dump(t, db); got != want {
		t.Fatalf("post-seal reopen mismatch")
	}
	st = db.EngineStats()
	if st.SealedRows != 768 {
		t.Fatalf("replayed sealed=%d, want 768", st.SealedRows)
	}

	// Checkpoint, then reopen from the checkpointed log.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	db.Close()
	db = openDisk(t, testDiskOpts(dir))
	if got := dump(t, db); got != want {
		t.Fatalf("post-checkpoint reopen mismatch")
	}
}

func TestDiskMutationsAfterSeal(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	mem := NewDatabase()
	seedRuns(t, db, 600)
	seedRuns(t, mem, 600)
	if err := db.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}

	stmts := []string{
		`UPDATE runs SET gflops = 0.0 WHERE id < 10`,
		`DELETE FROM runs WHERE id BETWEEN 100 AND 150`,
		`INSERT INTO runs (id, app, nprocs, gflops) VALUES (9001, 'late', 8, 1.25)`,
		`UPDATE runs SET app = 'bulk' WHERE nprocs >= 60`,
	}
	for _, s := range stmts {
		nd, err := db.Exec(s)
		if err != nil {
			t.Fatalf("disk %q: %v", s, err)
		}
		nm, err := mem.Exec(s)
		if err != nil {
			t.Fatalf("mem %q: %v", s, err)
		}
		if nd != nm {
			t.Fatalf("%q: disk affected %d, mem %d", s, nd, nm)
		}
	}
	if dump(t, db) != dump(t, mem) {
		t.Fatalf("disk/memory diverged after post-seal mutations")
	}

	// Everything must survive a restart, including the materialized rewrite.
	want := dump(t, mem)
	db.Close()
	db = openDisk(t, testDiskOpts(dir))
	if got := dump(t, db); got != want {
		t.Fatalf("post-restart mismatch after mutations")
	}
}

func TestDiskSealAfterMaterializeReplay(t *testing.T) {
	// Regression shape: seal, materialize (UPDATE), then seal again. Replay
	// must see an 'R' between the two 'S' records even when the UPDATE
	// changed nothing, or the second seal consumes rows the first already
	// claimed.
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	seedRuns(t, db, 512)
	if err := db.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if _, err := db.Exec(`UPDATE runs SET app = 'x' WHERE id = -1`); err != nil {
		t.Fatalf("no-op update: %v", err)
	}
	if err := db.Seal(); err != nil {
		t.Fatalf("re-seal: %v", err)
	}
	want := dump(t, db)
	db.Close()
	db = openDisk(t, testDiskOpts(dir))
	if got := dump(t, db); got != want {
		t.Fatalf("replay mismatch after seal/materialize/seal")
	}
}

// TestDiskDifferential runs a randomized statement interleaving against a
// disk database and the in-memory oracle, asserting byte-identical
// results throughout — including across a restart mid-interleaving.
func TestDiskDifferential(t *testing.T) {
	dir := t.TempDir()
	opts := testDiskOpts(dir)
	db := openDisk(t, opts)
	mem := NewDatabase()

	rng := rand.New(rand.NewSource(42))
	exec := func(sql string) {
		t.Helper()
		nd, errD := db.Exec(sql)
		nm, errM := mem.Exec(sql)
		if (errD == nil) != (errM == nil) {
			t.Fatalf("%q: disk err=%v, mem err=%v", sql, errD, errM)
		}
		if nd != nm {
			t.Fatalf("%q: disk affected %d, mem %d", sql, nd, nm)
		}
	}

	exec(`CREATE TABLE m (id INT, grp TEXT, val FLOAT)`)
	exec(`CREATE TABLE dims (grp TEXT, descr TEXT)`)
	for i := 0; i < 5; i++ {
		exec(fmt.Sprintf(`INSERT INTO dims (grp, descr) VALUES ('g%d', 'group %d')`, i, i))
	}
	if err := db.CreateIndex("m", "grp"); err != nil {
		t.Fatalf("index: %v", err)
	}
	if err := mem.CreateIndex("m", "grp"); err != nil {
		t.Fatalf("index: %v", err)
	}
	if err := db.CreateOrderedIndex("m", "id"); err != nil {
		t.Fatalf("oindex: %v", err)
	}
	if err := mem.CreateOrderedIndex("m", "id"); err != nil {
		t.Fatalf("oindex: %v", err)
	}

	queries := []string{
		`SELECT * FROM m`,
		`SELECT id, val FROM m WHERE id BETWEEN 50 AND 300`,
		`SELECT * FROM m WHERE grp = 'g2'`,
		`SELECT COUNT(*), AVG(val), MIN(id), MAX(id) FROM m`,
		`SELECT id FROM m WHERE val IS NULL`,
		`SELECT * FROM m ORDER BY id DESC LIMIT 17`,
		`SELECT m.id, dims.descr FROM m JOIN dims ON m.grp = dims.grp WHERE m.id < 40`,
		`SELECT * FROM m WHERE id NOT BETWEEN 10 AND 900`,
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			rd, errD := db.Query(q)
			rm, errM := mem.Query(q)
			if errD != nil || errM != nil {
				t.Fatalf("%s %q: disk err=%v mem err=%v", stage, q, errD, errM)
			}
			if resultString(rd) != resultString(rm) {
				t.Fatalf("%s %q: results diverged\ndisk:\n%s\nmem:\n%s",
					stage, q, resultString(rd), resultString(rm))
			}
		}
		if dump(t, db) != dump(t, mem) {
			t.Fatalf("%s: table dumps diverged", stage)
		}
	}

	next := 0
	for round := 0; round < 12; round++ {
		for i := 0; i < 120; i++ {
			switch rng.Intn(10) {
			case 0:
				exec(fmt.Sprintf(`DELETE FROM m WHERE id = %d`, rng.Intn(next+1)))
			case 1:
				exec(fmt.Sprintf(`UPDATE m SET val = %d.5 WHERE id = %d`,
					rng.Intn(100), rng.Intn(next+1)))
			case 2:
				exec(fmt.Sprintf(`UPDATE m SET grp = 'g%d' WHERE id BETWEEN %d AND %d`,
					rng.Intn(5), rng.Intn(next+1), rng.Intn(next+1)))
			default:
				val := "NULL"
				if rng.Intn(4) != 0 {
					val = fmt.Sprintf("%d.25", rng.Intn(1000))
				}
				exec(fmt.Sprintf(`INSERT INTO m (id, grp, val) VALUES (%d, 'g%d', %s)`,
					next, rng.Intn(5), val))
				next++
			}
		}
		switch round % 3 {
		case 0:
			if err := db.Seal(); err != nil {
				t.Fatalf("seal: %v", err)
			}
		case 1:
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
		check(fmt.Sprintf("round %d", round))

		if round == 5 {
			// Restart mid-interleaving: the oracle keeps running in memory;
			// the disk side must come back byte-identical.
			if err := db.Close(); err != nil {
				t.Fatalf("mid close: %v", err)
			}
			db = openDisk(t, opts)
			check("post-restart")
		}
	}
}

func resultString(rs *ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", rs.Columns)
	for _, row := range rs.Rows {
		for _, v := range row {
			fmt.Fprintf(&b, "%d:%v|", v.Kind, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDiskTornWAL appends a committed workload, then truncates the WAL at
// every byte boundary of its tail region. Each truncation must recover to
// exactly the state reachable by replaying the surviving record prefix.
func TestDiskTornWAL(t *testing.T) {
	master := t.TempDir()
	db := openDisk(t, testDiskOpts(master))
	db.MustExec(`CREATE TABLE kv (k INT, v TEXT)`)
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO kv (k, v) VALUES (%d, 'v%d')`, i, i))
	}
	db.Close()

	walFiles, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(walFiles) != 1 {
		t.Fatalf("wal files: %v %v", walFiles, err)
	}
	walBytes, err := os.ReadFile(walFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	walName := filepath.Base(walFiles[0])
	current, err := os.ReadFile(filepath.Join(master, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}

	// Reference states: replay the record prefix semantically for each
	// possible surviving record count.
	prefixDump := func(nRecords int) string {
		ref := NewDatabase()
		recs, _, err := readWALRecords(walBytes)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nRecords && i < len(recs); i++ {
			if err := applyToMemory(ref, recs[i]); err != nil {
				t.Fatalf("oracle replay rec %d: %v", i, err)
			}
		}
		return dump(t, ref)
	}

	// Truncate at a spread of byte offsets, including every boundary near
	// the tail (torn final record) and a few mid-file cuts.
	cuts := []int{len(walBytes)}
	for c := len(walBytes) - 1; c > len(walBytes)-40 && c > 0; c-- {
		cuts = append(cuts, c)
	}
	for c := 0; c < len(walBytes); c += 97 {
		cuts = append(cuts, c)
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "CURRENT"), current, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(testDiskOpts(dir))
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		recs, _, _ := readWALRecords(walBytes[:cut])
		want := prefixDump(len(recs))
		if got := dump(t, rec); got != want {
			t.Fatalf("cut %d: recovered state != %d-record prefix\ngot:\n%s\nwant:\n%s",
				cut, len(recs), got, want)
		}
		// The recovered database must be writable (torn tail truncated).
		if _, err := rec.Exec(`INSERT INTO kv (k, v) VALUES (999, 'after')`); err != nil {
			if len(recs) > 0 { // table may not exist at very early cuts
				t.Fatalf("cut %d: post-recovery insert: %v", cut, err)
			}
		}
		rec.Close()
	}
}

// TestDiskKillPoints is the randomized kill-point harness: a workload
// with seals and checkpoints runs to completion, then every file the
// engine wrote is snapshotted; random WAL truncations simulate crashes at
// arbitrary fsync boundaries, and each recovered state must match the
// semantic replay of its surviving record prefix.
func TestDiskKillPoints(t *testing.T) {
	master := t.TempDir()
	opts := testDiskOpts(master)
	db := openDisk(t, opts)
	db.MustExec(`CREATE TABLE ev (id INT, site TEXT, metric FLOAT)`)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 900; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO ev (id, site, metric) VALUES (%d, 's%d', %d.5)`,
			i, i%5, rng.Intn(500)))
		if i == 300 {
			if err := db.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		if i == 600 {
			if _, err := db.Exec(`DELETE FROM ev WHERE id < 50`); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	entries, err := os.ReadDir(master)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	var walFile string
	for _, ent := range entries {
		b, err := os.ReadFile(filepath.Join(master, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[ent.Name()] = b
		if strings.HasPrefix(ent.Name(), "wal-") {
			walFile = ent.Name()
		}
	}
	if walFile == "" {
		t.Fatal("no wal file")
	}
	wal := files[walFile]

	for trial := 0; trial < 25; trial++ {
		cut := rng.Intn(len(wal) + 1)
		dir := t.TempDir()
		for name, b := range files {
			if name == walFile {
				b = b[:cut]
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := Open(testDiskOpts(dir))
		if err != nil {
			t.Fatalf("trial %d cut %d: %v", trial, cut, err)
		}
		recs, _, _ := readWALRecords(wal[:cut])
		ref := NewDatabase()
		for i, r := range recs {
			if err := applyToMemory(ref, r); err != nil {
				t.Fatalf("trial %d: oracle rec %d: %v", trial, i, err)
			}
		}
		if got, want := dump(t, rec), dump(t, ref); got != want {
			t.Fatalf("trial %d cut %d: recovered != oracle prefix (%d records)",
				trial, cut, len(recs))
		}
		rec.Close()
	}
}

func TestDiskGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	db.MustExec(`CREATE TABLE c (w INT, i INT)`)

	const workers, per = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := db.InsertRow("c", Int(int64(w)), Int(int64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, err := db.NumRows("c")
	if err != nil || n != workers*per {
		t.Fatalf("rows = %d (%v), want %d", n, err, workers*per)
	}
	st := db.EngineStats()
	if st.WALFsyncs >= int64(workers*per) {
		t.Errorf("group commit: %d fsyncs for %d commits (no amortization)",
			st.WALFsyncs, workers*per)
	}

	want := dump(t, db)
	db.Close()
	db = openDisk(t, testDiskOpts(dir))
	if dump(t, db) != want {
		t.Fatal("concurrent commits lost across restart")
	}
}

func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testDiskOpts(dir)
	opts.MergeSegments = 2
	db := openDisk(t, opts)
	db.MustExec(`CREATE TABLE big (id INT, pad TEXT)`)
	for batch := 0; batch < 4; batch++ {
		rows := make([][]Value, vecBlockSize)
		for i := range rows {
			rows[i] = []Value{Int(int64(batch*vecBlockSize + i)), Text("padding-data")}
		}
		if err := db.InsertRows("big", rows); err != nil {
			t.Fatal(err)
		}
		if err := db.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	want := dump(t, db)
	st := db.EngineStats()
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments before merge, got %d", st.Segments)
	}

	// One deterministic compaction sweep folds the runs together.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st = db.EngineStats()
	if st.Merges == 0 {
		t.Fatalf("no merge ran (segments=%d)", st.Segments)
	}
	if got := dump(t, db); got != want {
		t.Fatal("merge changed query results")
	}

	// Checkpoint deletes the retired segment files.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("post-checkpoint segment files = %d, want 1 (%v)", len(segs), segs)
	}
	want2 := dump(t, db)
	if want2 != want {
		t.Fatal("checkpoint changed query results")
	}
	db.Close()
	db = openDisk(t, opts)
	if dump(t, db) != want {
		t.Fatal("merged state lost across restart")
	}
}

func TestDiskBulkLoad(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	db.MustExec(`CREATE TABLE bulk (id INT, x FLOAT)`)
	err := db.BulkLoad(func() error {
		rows := make([][]Value, 2000)
		for i := range rows {
			rows[i] = []Value{Int(int64(i)), Float(float64(i))}
		}
		return db.InsertRows("bulk", rows)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := db.EngineStats()
	if st.SealedRows != 1792 { // 2000 rounded down to full blocks
		t.Fatalf("bulk load sealed %d rows, want 1792", st.SealedRows)
	}
	if st.Checkpoints == 0 {
		t.Fatal("bulk load did not checkpoint")
	}
	want := dump(t, db)
	db.Close()
	db = openDisk(t, testDiskOpts(dir))
	if dump(t, db) != want {
		t.Fatal("bulk load lost across restart")
	}
}

func TestZoneMapPruning(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	db.MustExec(`CREATE TABLE zt (id INT, val FLOAT, tag TEXT)`)
	// Insert in id order so blocks have disjoint id ranges: selective range
	// predicates should skip nearly everything.
	rows := make([][]Value, 4096)
	for i := range rows {
		var v Value
		if i >= 1024 && i < 1280 {
			v = Null() // one all-NULL val block
		} else {
			v = Float(float64(i % 100))
		}
		rows[i] = []Value{Int(int64(i)), v, Text(fmt.Sprintf("t%d", i%3))}
	}
	if err := db.InsertRows("zt", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := db.EngineStats(); st.SealedRows != 4096 {
		t.Fatalf("sealed %d, want 4096", st.SealedRows)
	}

	cases := []struct {
		sql        string
		minSkipped int
	}{
		{`SELECT * FROM zt WHERE id BETWEEN 1000 AND 1100`, 14},
		{`SELECT * FROM zt WHERE id < 256`, 15},
		{`SELECT * FROM zt WHERE id >= 3840`, 15},
		{`SELECT * FROM zt WHERE id NOT BETWEEN 0 AND 5000`, 16},
		{`SELECT id FROM zt WHERE val IS NULL AND id >= 0`, 14}, // only the NULL block (+ tail-less)
		{`SELECT * FROM zt WHERE val > 40.0 AND id <= 100`, 15},
	}
	for _, c := range cases {
		pi, err := db.Explain(c.sql)
		if err != nil {
			t.Fatalf("explain %q: %v", c.sql, err)
		}
		if pi.Access != accessSeqScan {
			continue // an index probe would bypass the block scan
		}
		if pi.Blocks != 16 {
			t.Fatalf("%q: blocks=%d, want 16", c.sql, pi.Blocks)
		}
		if pi.BlocksSkipped < c.minSkipped {
			t.Errorf("%q: skipped %d blocks, want >= %d", c.sql, pi.BlocksSkipped, c.minSkipped)
		}
		// Pruned and unpruned scans must agree with each other and with the
		// naive executor.
		withPrune, err := db.Query(c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		db.SetZoneMapPruning(false)
		noPrune, err := db.Query(c.sql)
		db.SetZoneMapPruning(true)
		if err != nil {
			t.Fatalf("%q unpruned: %v", c.sql, err)
		}
		naive, err := db.QueryNaive(c.sql)
		if err != nil {
			t.Fatalf("%q naive: %v", c.sql, err)
		}
		if resultString(withPrune) != resultString(noPrune) ||
			resultString(withPrune) != resultString(naive) {
			t.Fatalf("%q: pruned/unpruned/naive diverged", c.sql)
		}
	}

	before := db.EngineStats().BlocksSkipped
	if _, err := db.Query(`SELECT * FROM zt WHERE id < 256`); err != nil {
		t.Fatal(err)
	}
	if after := db.EngineStats().BlocksSkipped; after-before < 15 {
		t.Errorf("scan-time skip counter advanced by %d, want >= 15", after-before)
	}
}

// TestZoneMapEqualityNotPruned pins the soundness rule: = and IN compare
// with Equal (which folds numeric text across kinds), so zone maps must
// never prune them — '5' equals 5 even when the zone range is [1,3].
func TestZoneMapEqualityNotPruned(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	db.MustExec(`CREATE TABLE q (x TEXT)`)
	rows := make([][]Value, vecBlockSize)
	for i := range rows {
		rows[i] = []Value{Text(fmt.Sprintf("%d", i%10))} // numeric text "0".."9"
	}
	if err := db.InsertRows("q", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	// Integer 5 vs text zone ["0".."9"]: Compare orders across kinds, Equal
	// folds. The query must still find the matches.
	rs, err := db.Query(`SELECT * FROM q WHERE x = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if want := (vecBlockSize + 4) / 10; len(rs.Rows) != want {
		t.Fatalf("x = 5 matched %d rows, want %d", len(rs.Rows), want)
	}
	pi, err := db.Explain(`SELECT * FROM q WHERE x = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if pi.BlocksSkipped != 0 {
		t.Fatalf("equality pruned %d blocks; Equal is not Compare-bounded", pi.BlocksSkipped)
	}
}

func TestDiskPageCacheHitAllocs(t *testing.T) {
	dir := t.TempDir()
	db := openDisk(t, testDiskOpts(dir))
	db.MustExec(`CREATE TABLE a (id INT, v FLOAT)`)
	rows := make([][]Value, 4*vecBlockSize)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Float(float64(i))}
	}
	if err := db.InsertRows("a", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}

	stmt, err := db.Prepare(`SELECT id FROM a WHERE v >= 0.0`)
	if err != nil {
		t.Fatal(err)
	}
	warm := func() int {
		n := 0
		rows, err := stmt.QueryStream()
		if err != nil {
			t.Fatal(err)
		}
		var b ValueBatch
		for rows.NextBatch(&b, vecBlockSize) {
			n += b.Rows()
		}
		rows.Close()
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := warm(); got != len(rows) {
		t.Fatalf("scan returned %d rows, want %d", got, len(rows))
	}

	// Warm-cache block scan: every sealed block is a page-cache hit. The
	// pin covers the whole query including plan lookup and iterator setup;
	// block decode would add two allocations per block and busts the pin.
	avg := testing.AllocsPerRun(20, func() { warm() })
	if avg > 17 {
		t.Errorf("warm block scan allocates %.1f/op, want <= 17", avg)
	}

	st := db.EngineStats()
	if st.PageCacheHits == 0 {
		t.Fatal("no page cache hits recorded")
	}
}

func TestZoneMapProbeAllocs(t *testing.T) {
	zm := []zoneEntry{
		{min: Int(0), max: Int(255), nulls: 0},
		{min: Float(1.5), max: Float(99.5), nulls: 3},
	}
	kernels := []boundVec{
		{pred: &vecPred{kind: vpCmp, col: 0, op: "<"}, a: Int(-5)},
		{pred: &vecPred{kind: vpBetween, col: 1}, a: Float(2), b: Float(3)},
	}
	avg := testing.AllocsPerRun(100, func() {
		if !pruneBlock(zm, kernels) {
			t.Fatal("block should prune")
		}
	})
	if avg != 0 {
		t.Errorf("pruneBlock allocates %.1f/op, want 0", avg)
	}
}

// readWALRecords parses WAL bytes via segment.ReadWAL (which reads from
// a path), returning the valid record prefix.
func readWALRecords(b []byte) ([][]byte, int64, error) {
	f, err := os.CreateTemp("", "walprobe-*.log")
	if err != nil {
		return nil, 0, err
	}
	path := f.Name()
	defer os.Remove(path)
	if _, err := f.Write(b); err != nil {
		f.Close()
		return nil, 0, err
	}
	f.Close()
	return segment.ReadWAL(path)
}

// applyToMemory replays one WAL record against a pure in-memory database,
// the semantic oracle for recovery: segment-file side effects ('S'/'M')
// change only physical layout, never logical contents, so the oracle
// ignores them.
func applyToMemory(db *Database, rec []byte) error {
	if len(rec) == 0 {
		return errf("exec", "empty record")
	}
	r := &rbuf{b: rec[1:]}
	switch rec[0] {
	case recCreateTable:
		name := r.str()
		n := int(r.u32())
		cols := make([]Column, n)
		for i := range cols {
			cols[i].Name = r.str()
			cols[i].Type = ColumnType(r.u8())
		}
		if r.err != nil {
			return r.err
		}
		return db.createTable(&CreateTableStmt{Name: name, Columns: cols})
	case recDropTable:
		name := r.str()
		if r.err != nil {
			return r.err
		}
		return db.dropTable(&DropTableStmt{Name: name})
	case recCreateIndex:
		table, column := r.str(), r.str()
		ordered := r.u8() == 1
		if r.err != nil {
			return r.err
		}
		if ordered {
			return db.CreateOrderedIndex(table, column)
		}
		return db.CreateIndex(table, column)
	case recInsert:
		table := r.str()
		rows, err := decodeRecRows(r)
		if err != nil {
			return err
		}
		vals := make([][]Value, len(rows))
		for i, row := range rows {
			vals[i] = row
		}
		return db.InsertRows(table, vals)
	case recRewrite:
		table := r.str()
		rows, err := decodeRecRows(r)
		if err != nil {
			return err
		}
		db.mu.Lock()
		defer db.mu.Unlock()
		t, err := db.table(table)
		if err != nil {
			return err
		}
		t.Rows = rows
		t.reindex()
		return nil
	case recSeal, recMerge, recCheckpoint:
		// Physical-layout records; 'C' only appears first in a fresh log,
		// which these oracles never replay (no checkpoint in the window).
		return nil
	}
	return errf("exec", "unknown record kind %q", rec[0])
}
