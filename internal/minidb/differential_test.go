// Differential tests: randomized star-schema queries run through both the
// planned pipeline (hash join, index probes, predicate pushdown — the
// production path behind Database.Query) and the retained naive executor
// (full-materialization nested loop — Database.QueryNaive), asserting
// byte-identical result sets. This is the equivalence proof behind the
// query-engine overhaul; any planner shortcut that changes semantics
// shows up here as a diff.
//
// The file lives in package minidb_test so it can generate realistic data
// through datagen (which itself imports minidb).
package minidb_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/minidb"
)

// starDB loads an SMG98-shaped star schema and declares exactly the
// indexes the mapping layer declares (mapping.DeclareStarIndexes: the
// hash indexes plus the ordered time/value indexes), so the planned path
// exercises the production index configuration — including the hash
// join's build-side index reuse on the dimension keys and the ordered
// range probes on the fact table.
func starDB(t *testing.T, seed int64) *minidb.Database {
	t.Helper()
	db := minidb.NewDatabase()
	d := datagen.SMG98(datagen.SMG98Config{Executions: 3, Processes: 2, TimeBins: 4, Seed: seed})
	if err := datagen.LoadStarSchema(db, d); err != nil {
		t.Fatal(err)
	}
	if err := mapping.DeclareStarIndexes(db); err != nil {
		t.Fatal(err)
	}
	return db
}

// randStarQuery composes one random query over the star schema from
// building blocks that cover the planner's paths: indexed equality,
// pushed-down single-side filters, hash equi-joins, nested-loop non-equi
// joins, DISTINCT, ORDER BY, LIMIT, aggregates, IN, BETWEEN, LIKE, OR.
func randStarQuery(rng *rand.Rand) string {
	execid := fmt.Sprintf("'%d'", 1+rng.Intn(4)) // occasionally absent (4)
	metricid := 1 + rng.Intn(5)
	fociid := 1 + rng.Intn(20)
	threshold := rng.Float64() * 50

	conds := []string{
		fmt.Sprintf("r.execid = %s", execid),
		fmt.Sprintf("r.metricid = %d", metricid),
		fmt.Sprintf("r.fociid = %d", fociid),
		fmt.Sprintf("r.value > %g", threshold),
		fmt.Sprintf("r.starttime BETWEEN %g AND %g", threshold, threshold+30),
		fmt.Sprintf("r.starttime >= %g", threshold),
		fmt.Sprintf("r.endtime <= %g", threshold+45),
		fmt.Sprintf("r.value BETWEEN %g AND %g", threshold, threshold+25),
		fmt.Sprintf("r.metricid IN (%d, %d)", metricid, 1+rng.Intn(5)),
		fmt.Sprintf("r.execid = %s OR r.fociid = %d", execid, fociid),
		"f.path LIKE '/Process/0/%'",
		"f.path NOT LIKE '%MPI%'",
		fmt.Sprintf("f.fociid != %d", fociid),
	}
	where := ""
	sep := " WHERE "
	for i, n := 0, rng.Intn(4); i < n; i++ {
		where += sep + conds[rng.Intn(len(conds))]
		sep = " AND "
	}

	switch rng.Intn(8) {
	case 0: // hash equi-join, projected columns
		return "SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid = f.fociid" + where
	case 1: // equi-join with ORDER BY and LIMIT
		return "SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid = f.fociid" + where +
			fmt.Sprintf(" ORDER BY r.value DESC, f.path LIMIT %d", 1+rng.Intn(50))
	case 2: // non-equi join: nested-loop fallback
		return "SELECT r.execid, f.fociid FROM results r JOIN foci f ON r.fociid < f.fociid" + where +
			" ORDER BY r.execid, f.fociid LIMIT 40"
	case 3: // aggregates over the join
		return "SELECT COUNT(*), MIN(r.value), MAX(r.value), SUM(r.value) FROM results r JOIN foci f ON r.fociid = f.fociid" + where
	case 4: // single-table indexed scan with DISTINCT
		w := ""
		if rng.Intn(2) == 0 {
			w = fmt.Sprintf(" WHERE execid = %s", execid)
		}
		return "SELECT DISTINCT metricid FROM results" + w + " ORDER BY metricid"
	case 5: // ordered-index range probe with ORDER BY on the probe column
		return fmt.Sprintf(
			"SELECT execid, starttime, value FROM results WHERE starttime >= %g AND starttime <= %g ORDER BY starttime LIMIT %d",
			threshold, threshold+40, 1+rng.Intn(30))
	case 6: // descending ordered walk (duplicate keys exercise run order)
		return fmt.Sprintf("SELECT metricid, value FROM results ORDER BY metricid DESC LIMIT %d", 1+rng.Intn(20))
	default: // single-table projection with mixed filters
		return fmt.Sprintf(
			"SELECT execid, fociid, value FROM results WHERE execid = %s AND value > %g ORDER BY fociid, value LIMIT %d",
			execid, threshold, 1+rng.Intn(30))
	}
}

// assertSameResults runs one query through both executors and compares.
func assertSameResults(t *testing.T, db *minidb.Database, q string) {
	t.Helper()
	planned, perr := db.Query(q)
	naive, nerr := db.QueryNaive(q)
	if (perr == nil) != (nerr == nil) {
		t.Fatalf("error divergence for %q:\nplanned err: %v\nnaive err:   %v", q, perr, nerr)
	}
	if perr != nil {
		return
	}
	if !reflect.DeepEqual(planned.Columns, naive.Columns) {
		t.Fatalf("column divergence for %q:\nplanned %v\nnaive   %v", q, planned.Columns, naive.Columns)
	}
	if !reflect.DeepEqual(planned.Strings(), naive.Strings()) {
		t.Fatalf("row divergence for %q:\nplanned %v\nnaive   %v", q, planned.Strings(), naive.Strings())
	}
}

// TestDifferentialErrorShapes pins error parity for queries whose
// predicates cannot be evaluated: unknown columns, ambiguous references,
// and aggregates in WHERE must error (or not) identically in both
// executors — index shortcuts must never mask a per-row evaluation error.
func TestDifferentialErrorShapes(t *testing.T) {
	db := starDB(t, 1)
	for _, q := range []string{
		// Unknown column beside an indexed equality that matches nothing.
		"SELECT value FROM results WHERE nosuchcol = 1 AND execid = 'absent'",
		"SELECT value FROM results WHERE execid = '1' AND nosuchcol = 1",
		// Unknown column in a residual ON conjunct of a hash join.
		"SELECT r.value FROM results r JOIN foci f ON r.fociid = f.fociid AND nosuch = 1 WHERE r.execid = 'absent'",
		// Ambiguous unqualified reference (fociid lives in both tables).
		"SELECT r.value FROM results r JOIN foci f ON r.fociid = f.fociid WHERE fociid = 1",
		// Aggregate in a row context.
		"SELECT value FROM results WHERE COUNT(value) > 1",
		// Qualified reference to the wrong alias.
		"SELECT r.value FROM results r JOIN foci f ON r.fociid = f.fociid WHERE q.execid = '1'",
	} {
		assertSameResults(t, db, q)
	}
}

func TestDifferentialStarQueries(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db := starDB(t, seed)
			rng := rand.New(rand.NewSource(seed * 7919))
			queries := make([]string, 150)
			for i := range queries {
				queries[i] = randStarQuery(rng)
			}
			for _, q := range queries {
				assertSameResults(t, db, q)
			}

			// Mutate the store (exercising index maintenance), then replay.
			if _, err := db.Exec("DELETE FROM results WHERE fociid = 2"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec("UPDATE results SET fociid = 3 WHERE metricid = 2 AND fociid = 4"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec("INSERT INTO results VALUES ('9', 1, 1, 1, 0, 60, 4.25)"); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries[:60] {
				assertSameResults(t, db, q)
			}
		})
	}
}

// TestDifferentialWideQueries runs the HPL wide-table shapes through both
// executors: point queries, DISTINCT projections, and NULL handling.
func TestDifferentialWideQueries(t *testing.T) {
	db := minidb.NewDatabase()
	d := datagen.HPL(datagen.HPLConfig{Executions: 60, Seed: 1})
	if err := datagen.LoadWideTable(db, "executions", d); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("executions", "execid"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 80; i++ {
		id := 100 + rng.Intn(70)
		var q string
		switch i % 4 {
		case 0:
			q = fmt.Sprintf("SELECT gflops FROM executions WHERE execid = '%d'", id)
		case 1:
			q = fmt.Sprintf("SELECT execid, gflops FROM executions WHERE gflops > %g ORDER BY execid", rng.Float64()*10)
		case 2:
			q = "SELECT DISTINCT numprocesses FROM executions WHERE numprocesses IS NOT NULL ORDER BY numprocesses"
		default:
			q = fmt.Sprintf("SELECT COUNT(*), AVG(gflops) FROM executions WHERE execid != '%d'", id)
		}
		assertSameResults(t, db, q)
	}
}
