package minidb

import (
	"sort"
	"sync"
)

// orderedIndex is a sorted secondary index over one column of a table: a
// key array sorted by (Compare, row position) plus the positions of NULL
// rows. Range predicates binary-search the key array instead of scanning
// the table, and ORDER BY on the indexed column can emit rows in index
// order instead of materializing and sorting.
//
// Unlike the hash index (which is maintained incrementally on insert),
// the ordered index is maintained lazily: every mutation just marks it
// stale, and the next probe rebuilds it in one O(n log n) sort. That
// keeps million-row bulk loads O(1) per insert while read-heavy phases
// pay the sort exactly once.
//
// NULL is excluded from the key array (mirroring the hash index) and
// tracked separately in nulls: under Compare, NULL sorts before
// everything, so ordered emission needs the NULL positions, and IS NULL
// probes can answer from them directly.
//
// Concurrency: probes run under the database read lock, so the lazy
// rebuild happens while other readers may be probing too. The per-index
// mutex serializes the build; staleness only ever becomes true under the
// database write lock, which excludes all readers, so within one
// read-locked window at most the first prober rebuilds and every later
// reader sees a fully built, immutable array.
type orderedIndex struct {
	column string
	col    int // column position in the table

	mu    sync.Mutex
	stale bool
	keys  []Value // non-NULL column values, sorted by (Compare, position)
	pos   []int   // pos[i] is the row position of keys[i]
	nulls []int   // positions of NULL-valued rows, ascending
}

// invalidate marks the index stale. The caller must hold the database
// write lock (which excludes every reader that could be mid-build).
func (ix *orderedIndex) invalidate() { ix.stale = true }

// ensure rebuilds the index if stale. Callers must hold at least the
// database read lock; after ensure returns, keys/pos/nulls are immutable
// until the next write-locked mutation. A block-read error during the
// build leaves the index stale (so the next probe retries) and is
// returned for the caller to propagate.
func (ix *orderedIndex) ensure(v *rowsView) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.stale {
		return nil
	}
	ix.build(v)
	if v.err != nil {
		return v.err
	}
	ix.stale = false
	return nil
}

func (ix *orderedIndex) build(v *rowsView) {
	ix.keys = ix.keys[:0]
	ix.pos = ix.pos[:0]
	ix.nulls = ix.nulls[:0]
	n := v.total()
	for p := 0; p < n; p++ {
		val := v.row(p)[ix.col]
		if val.IsNull() {
			ix.nulls = append(ix.nulls, p)
			continue
		}
		ix.keys = append(ix.keys, val)
		ix.pos = append(ix.pos, p)
	}
	sort.Sort(&keyPosSorter{keys: ix.keys, pos: ix.pos})
}

// keyPosSorter sorts the parallel keys/pos arrays by (Compare, position).
// The position tie-break makes the order a deterministic total order, so
// plain sort.Sort suffices and equal-key runs keep ascending positions —
// which ordered emission relies on to replicate a stable sort.
type keyPosSorter struct {
	keys []Value
	pos  []int
}

func (s *keyPosSorter) Len() int { return len(s.keys) }
func (s *keyPosSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
}
func (s *keyPosSorter) Less(i, j int) bool {
	c := Compare(s.keys[i], s.keys[j])
	if c != 0 {
		return c < 0
	}
	return s.pos[i] < s.pos[j]
}

// lowerBound returns the first key position i such that keys[i] is >= v
// (inclusive) or > v (exclusive). The caller must have called ensure.
func (ix *orderedIndex) lowerBound(v Value, incl bool) int {
	return sort.Search(len(ix.keys), func(i int) bool {
		c := Compare(ix.keys[i], v)
		if incl {
			return c >= 0
		}
		return c > 0
	})
}

// upperBound returns one past the last key position i such that keys[i]
// is <= v (inclusive) or < v (exclusive).
func (ix *orderedIndex) upperBound(v Value, incl bool) int {
	return sort.Search(len(ix.keys), func(i int) bool {
		c := Compare(ix.keys[i], v)
		if incl {
			return c > 0
		}
		return c >= 0
	})
}

// addOrderedIndex declares an ordered index on the named column. Declaring
// the same column twice is a no-op; created reports whether this call
// declared it. The index is built lazily on first probe.
func (t *Table) addOrderedIndex(column string) (created bool, err error) {
	col := t.ColumnIndex(column)
	if col < 0 {
		return false, errf("plan", "table %q has no column %q to index", t.Name, column)
	}
	if t.ordered == nil {
		t.ordered = make(map[string]*orderedIndex)
	}
	if _, ok := t.ordered[column]; ok {
		return false, nil
	}
	t.ordered[column] = &orderedIndex{column: column, col: col, stale: true}
	return true, nil
}

// orderedIx returns the ordered index on the named column, or nil.
func (t *Table) orderedIx(column string) *orderedIndex {
	return t.ordered[column]
}

// CreateOrderedIndex declares a sorted range index on table.column
// (`CREATE ORDERED INDEX` in SQL). Subsequent range predicates
// (<, <=, >, >=, BETWEEN) on that column binary-search the index instead
// of scanning, IS NULL probes answer from the tracked NULL positions, and
// a single-key ORDER BY on the column can stream rows in index order
// (with LIMIT stopping early). The index is maintained lazily: mutations
// mark it stale and the next probe rebuilds it.
func (db *Database) CreateOrderedIndex(table, column string) error {
	return db.commitDurable(db.createIndex(table, column, true))
}

// OrderedIndexes reports the ordered-indexed columns of a table, for
// introspection and tests.
func (db *Database) OrderedIndexes(table string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(t.ordered))
	for c := range t.ordered {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, nil
}
