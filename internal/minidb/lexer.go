package minidb

import (
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , * . = != <> < <= > >= ;
)

// keywords recognized by the parser. Identifiers matching these
// (case-insensitively) lex as tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "DISTINCT": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "DROP": true, "DELETE": true, "JOIN": true,
	"INNER": true, "ON": true, "AS": true, "LIKE": true, "NULL": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "FLOAT": true, "REAL": true,
	"DOUBLE": true, "PRECISION": true, "TEXT": true, "VARCHAR": true, "CHAR": true,
	"IS": true, "IN": true, "BETWEEN": true, "UPDATE": true, "SET": true,
	"INDEX": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; strings unquoted; others verbatim
	pos  int    // byte offset in the input, for error messages
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a SQL statement.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a single quote, per SQL.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return errf("parse", "unterminated string literal at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				l.pos++
			}
		default:
			l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return
		}
		l.pos++
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.emit(token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.emit(token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		l.pos += 2
		text := two
		if text == "<>" {
			text = "!="
		}
		l.emit(token{kind: tokSymbol, text: text, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '.', '=', '<', '>', ';', '-', '+', '?':
		l.pos++
		l.emit(token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return errf("parse", "unexpected character %q at offset %d", string(c), start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
