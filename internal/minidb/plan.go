package minidb

import (
	"sort"
	"strings"
)

// This file is the planned half of the SELECT path: planSelect analyzes a
// parsed statement against the schema and runPlan executes the resulting
// operator pipeline. The planner
//
//   - splits the WHERE clause into AND-conjuncts and pushes each down to
//     the earliest operator that can evaluate it (base scan, join build
//     side, or post-join),
//   - extracts an equi-join key from the ON clause and joins with a hash
//     join when one exists, falling back to the naive nested loop
//     otherwise,
//   - probes a secondary hash index instead of scanning when an indexed
//     column is compared for equality against a constant or parameter
//     (IN lists multi-probe the same index),
//   - probes an ordered index (ordered.go) with a binary-searched range
//     span for </<=/>/>=/BETWEEN bounds and for IS NULL, and
//   - satisfies a single-key ORDER BY from ordered-index order (streaming
//     with LIMIT stopping early) when no probe narrowed the scan; when one
//     did, ORDER BY ... LIMIT materializes through a bounded top-k heap
//     instead of sorting the full result.
//
// Execution is a pull-based iterator pipeline (rowSrc), so consumers can
// stream rows without materializing the whole result; aggregate queries
// and ORDER BY queries not satisfied by an index still materialize, as
// they must. Residual base-scan predicates run column-at-a-time through
// compiled kernels over selection-vector blocks (vector.go) rather than
// row-at-a-time through eval.
//
// Index and hash-join buckets may contain false positives (see indexKey),
// so the pipeline re-evaluates every pushed predicate and the full ON
// expression on candidate rows. That makes the planned path's semantics
// exactly those of the retained naive executor (runSelectNaive), which the
// differential tests assert.

// eqCand is one index-eligible equality: base column col compared against
// a constant (or parameter) expression.
type eqCand struct {
	col int
	val Expr
}

// rangeCand is one index-eligible range bound: base column col bounded by
// a constant expression, with op one of < <= > >= (column on the left).
// When reqNonNull is set, the bound is usable only if that expression
// evaluates non-NULL: a BETWEEN whose lower bound is NULL degenerates (by
// Compare semantics) to an upper-bound check that NULL rows also satisfy,
// and the index excludes NULL rows, so probing would drop matches.
type rangeCand struct {
	col        int
	op         string
	val        Expr
	reqNonNull Expr
}

// inCand is one index-eligible IN list: base column col matched against
// all-constant items, multi-probed on the hash index. Usable only when
// every item evaluates non-NULL (Equal(NULL, NULL) is true in this
// engine, so a NULL item matches NULL rows, which the index excludes).
type inCand struct {
	col  int
	list []Expr
}

// orderPush records a structurally index-satisfiable ORDER BY: exactly one
// key that is a plain reference to base column col. DISTINCT disqualifies
// (the naive executor deduplicates before sorting, keeping first-in-table-
// order representatives, which index order cannot replicate).
type orderPush struct {
	col  int
	desc bool
}

// selectPlan is a planned SELECT, valid for the schema it was planned
// against. A plan is immutable after planSelect returns — Stmt caches one
// plan across executions (invalidated by Database.schemaGen) and may run
// it from many goroutines, so per-execution state lives in the iterators
// built by pipeline, never on the plan itself.
type selectPlan struct {
	st    *SelectStmt
	db    *Database
	base  *Table
	cols  []qcol // combined row shape: base columns then join columns
	nLeft int

	// unsafe marks a query whose WHERE or ON could error during row
	// evaluation (unknown/ambiguous column, aggregate in a predicate).
	// The pipeline's pushdown and index shortcuts skip row evaluations,
	// which would mask those per-row errors, so unsafe queries execute
	// on the naive executor to keep planned semantics exactly equal.
	unsafe bool

	leftPred []Expr // conjuncts evaluable on base rows alone

	// Index-eligible shapes among leftPred. Candidates are collected at
	// plan time regardless of whether a matching index exists — CREATE
	// INDEX does not bump schemaGen, so index presence is (re)checked per
	// execution in chooseAccess.
	eqCands    []eqCand
	rangeCands []rangeCand
	inCands    []inCand
	nullCands  []int // base columns with a non-negated IS NULL conjunct

	vecPreds []vecPred  // compiled column-at-a-time forms of leftPred, 1:1
	orderBy  *orderPush // non-nil: ORDER BY satisfiable from index order
	hasAgg   bool

	join *joinPlan // nil for single-table queries
}

// joinPlan is the join half of a plan.
type joinPlan struct {
	right     *Table
	rightPred []Expr // conjuncts evaluable on right rows alone
	postPred  []Expr // conjuncts needing the combined row

	// Hash-join key column positions (within base and right rows); -1
	// when no equi-key was found and the join falls back to nested loop.
	leftKey, rightKey int
	on                Expr // full ON expression, re-checked on candidates
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return splitConjuncts(b.R, splitConjuncts(b.L, out))
	}
	return append(out, e)
}

// refSides classifies which sides of the row an expression touches.
type refSides struct {
	left, right, other bool
}

func (s refSides) leftOnly() bool  { return s.left && !s.right && !s.other }
func (s refSides) rightOnly() bool { return s.right && !s.left && !s.other }

// collectSides walks an expression recording which side each column
// reference resolves to. References that are ambiguous or unresolvable
// set other, forcing evaluation on the combined row where the naive
// error surfaces identically.
func collectSides(e Expr, p *selectPlan, rightQual string, baseQual string, s *refSides) {
	switch x := e.(type) {
	case nil, *Literal, *Param:
	case *ColumnRef:
		p.refSide(x, baseQual, rightQual, s)
	case *Binary:
		collectSides(x.L, p, rightQual, baseQual, s)
		collectSides(x.R, p, rightQual, baseQual, s)
	case *Unary:
		collectSides(x.X, p, rightQual, baseQual, s)
	case *IsNull:
		collectSides(x.X, p, rightQual, baseQual, s)
	case *Between:
		collectSides(x.X, p, rightQual, baseQual, s)
		collectSides(x.Lo, p, rightQual, baseQual, s)
		collectSides(x.Hi, p, rightQual, baseQual, s)
	case *InList:
		collectSides(x.X, p, rightQual, baseQual, s)
		for _, it := range x.List {
			collectSides(it, p, rightQual, baseQual, s)
		}
	default:
		s.other = true
	}
}

// refSide resolves one column reference to a side of the combined row.
func (p *selectPlan) refSide(ref *ColumnRef, baseQual, rightQual string, s *refSides) {
	inLeft := p.base.ColumnIndex(ref.Name) >= 0
	inRight := p.join != nil && p.join.right.ColumnIndex(ref.Name) >= 0
	if ref.Table != "" {
		switch {
		case strings.EqualFold(ref.Table, baseQual) && inLeft:
			s.left = true
		case p.join != nil && strings.EqualFold(ref.Table, rightQual) && inRight:
			s.right = true
		default:
			s.other = true
		}
		return
	}
	switch {
	case inLeft && !inRight:
		s.left = true
	case inRight && !inLeft:
		s.right = true
	default:
		s.other = true // ambiguous or unknown: evaluate on combined row
	}
}

// exprStaticallySafe reports whether evaluating e can never error for
// any row: every column reference resolves uniquely against cols and no
// aggregate appears (parameters are arity-checked before execution).
// This mirrors env.resolve exactly — name matches are case-sensitive,
// qualifier matches fold case.
func exprStaticallySafe(e Expr, cols []qcol) bool {
	switch x := e.(type) {
	case nil, *Literal, *Param:
		return true
	case *ColumnRef:
		found := 0
		for _, c := range cols {
			if c.name != x.Name {
				continue
			}
			if x.Table != "" && !strings.EqualFold(c.qualifier, x.Table) {
				continue
			}
			found++
		}
		return found == 1
	case *Binary:
		return exprStaticallySafe(x.L, cols) && exprStaticallySafe(x.R, cols)
	case *Unary:
		return exprStaticallySafe(x.X, cols)
	case *IsNull:
		return exprStaticallySafe(x.X, cols)
	case *Between:
		return exprStaticallySafe(x.X, cols) && exprStaticallySafe(x.Lo, cols) &&
			exprStaticallySafe(x.Hi, cols)
	case *InList:
		if !exprStaticallySafe(x.X, cols) {
			return false
		}
		for _, it := range x.List {
			if !exprStaticallySafe(it, cols) {
				return false
			}
		}
		return true
	}
	return false // aggregates (row-context error) and unknown node kinds
}

// isConst reports whether an expression references no columns, i.e. is
// evaluable before any row is read (literals, parameters, and boolean
// combinations thereof).
func isConst(e Expr) bool {
	switch x := e.(type) {
	case *Literal, *Param:
		return true
	case *Unary:
		return isConst(x.X)
	case *Binary:
		return isConst(x.L) && isConst(x.R)
	}
	return false
}

// planSelect analyzes a SELECT against the current schema. The caller
// must hold at least a read lock.
func (db *Database) planSelect(st *SelectStmt) (*selectPlan, error) {
	base, err := db.table(st.From)
	if err != nil {
		return nil, err
	}
	baseQual := st.Alias
	if baseQual == "" {
		baseQual = st.From
	}
	p := &selectPlan{st: st, db: db, base: base}
	for _, c := range base.Columns {
		p.cols = append(p.cols, qcol{qualifier: baseQual, name: c.Name})
	}
	p.nLeft = len(p.cols)

	rightQual := ""
	if st.Join != nil {
		right, err := db.table(st.Join.Table)
		if err != nil {
			return nil, err
		}
		rightQual = st.Join.Alias
		if rightQual == "" {
			rightQual = st.Join.Table
		}
		p.join = &joinPlan{right: right, leftKey: -1, rightKey: -1, on: st.Join.On}
		for _, c := range right.Columns {
			p.cols = append(p.cols, qcol{qualifier: rightQual, name: c.Name})
		}
	}

	// Queries whose predicates could error per row must not be
	// short-circuited by pushdown or index probes; route them to the
	// naive executor instead (see the unsafe field).
	if !exprStaticallySafe(st.Where, p.cols) ||
		(st.Join != nil && !exprStaticallySafe(st.Join.On, p.cols)) {
		p.unsafe = true
		return p, nil
	}

	// Push WHERE conjuncts down by the sides they reference.
	if st.Where != nil {
		for _, c := range splitConjuncts(st.Where, nil) {
			var s refSides
			collectSides(c, p, rightQual, baseQual, &s)
			switch {
			case p.join == nil:
				// Single table: the combined row is the base row, so every
				// conjunct evaluates at the scan.
				p.leftPred = append(p.leftPred, c)
			case s.leftOnly():
				p.leftPred = append(p.leftPred, c)
			case s.rightOnly():
				p.join.rightPred = append(p.join.rightPred, c)
			default:
				p.join.postPred = append(p.join.postPred, c)
			}
		}
	}

	// Extract a hash-join equi-key from the ON conjuncts: the first
	// col-to-col equality spanning the two sides. The full ON expression
	// is still evaluated on candidate pairs, so any residual conjuncts
	// (and key-collision false positives) are filtered exactly.
	if p.join != nil {
		for _, c := range splitConjuncts(st.Join.On, nil) {
			b, ok := c.(*Binary)
			if !ok || b.Op != "=" {
				continue
			}
			l, lok := b.L.(*ColumnRef)
			r, rok := b.R.(*ColumnRef)
			if !lok || !rok {
				continue
			}
			var ls, rs refSides
			p.refSide(l, baseQual, rightQual, &ls)
			p.refSide(r, baseQual, rightQual, &rs)
			if ls.leftOnly() && rs.rightOnly() {
				p.join.leftKey = p.base.ColumnIndex(l.Name)
				p.join.rightKey = p.join.right.ColumnIndex(r.Name)
			} else if ls.rightOnly() && rs.leftOnly() {
				p.join.leftKey = p.base.ColumnIndex(r.Name)
				p.join.rightKey = p.join.right.ColumnIndex(l.Name)
			} else {
				continue
			}
			break
		}
	}

	// Collect index-eligible predicate shapes among the base-scan
	// conjuncts: equalities and IN lists (hash index), range bounds and
	// IS NULL (ordered index).
	for _, c := range p.leftPred {
		switch x := c.(type) {
		case *Binary:
			op := x.Op
			ref, val := x.L, x.R
			if _, ok := ref.(*ColumnRef); !ok {
				ref, val = x.R, x.L
				op = flipCmp(op)
			}
			cr, ok := ref.(*ColumnRef)
			if !ok || !isConst(val) {
				continue
			}
			col := p.baseCol(cr, baseQual, rightQual)
			if col < 0 {
				continue
			}
			switch op {
			case "=":
				p.eqCands = append(p.eqCands, eqCand{col: col, val: val})
			case "<", "<=", ">", ">=":
				p.rangeCands = append(p.rangeCands, rangeCand{col: col, op: op, val: val})
			}
		case *Between:
			if x.Negate || !isConst(x.Lo) || !isConst(x.Hi) {
				continue
			}
			cr, ok := x.X.(*ColumnRef)
			if !ok {
				continue
			}
			col := p.baseCol(cr, baseQual, rightQual)
			if col < 0 {
				continue
			}
			// Both bounds are guarded on the lower bound being non-NULL;
			// see rangeCand. (A NULL upper bound needs no guard: the
			// predicate then matches nothing, and any span is a superset
			// of the empty set.)
			p.rangeCands = append(p.rangeCands,
				rangeCand{col: col, op: ">=", val: x.Lo, reqNonNull: x.Lo},
				rangeCand{col: col, op: "<=", val: x.Hi, reqNonNull: x.Lo})
		case *InList:
			if x.Negate {
				continue
			}
			cr, ok := x.X.(*ColumnRef)
			if !ok {
				continue
			}
			allConst := true
			for _, it := range x.List {
				if !isConst(it) {
					allConst = false
					break
				}
			}
			if !allConst {
				continue
			}
			if col := p.baseCol(cr, baseQual, rightQual); col >= 0 {
				p.inCands = append(p.inCands, inCand{col: col, list: x.List})
			}
		case *IsNull:
			if x.Negate {
				continue
			}
			cr, ok := x.X.(*ColumnRef)
			if !ok {
				continue
			}
			if col := p.baseCol(cr, baseQual, rightQual); col >= 0 {
				p.nullCands = append(p.nullCands, col)
			}
		}
	}

	// Compile the base-scan conjuncts to vectorized kernels (vector.go).
	if len(p.leftPred) > 0 {
		p.vecPreds = make([]vecPred, len(p.leftPred))
		for i, c := range p.leftPred {
			p.vecPreds[i] = p.compileVec(c, baseQual, rightQual)
		}
	}

	p.hasAgg = !st.Star && hasAggregate(st.Items)

	// A single-key ORDER BY over a plain base-column reference can be
	// satisfied from an ordered index's key order. The reference must
	// resolve uniquely against the combined row (mirroring env.resolve) to
	// a base column; DISTINCT and aggregates disqualify.
	if len(st.OrderBy) == 1 && !st.Distinct && !p.hasAgg {
		if cr, ok := st.OrderBy[0].Expr.(*ColumnRef); ok {
			found, idx := 0, -1
			for i, c := range p.cols {
				if c.name != cr.Name {
					continue
				}
				if cr.Table != "" && !strings.EqualFold(c.qualifier, cr.Table) {
					continue
				}
				found++
				idx = i
			}
			if found == 1 && idx < p.nLeft {
				p.orderBy = &orderPush{col: idx, desc: st.OrderBy[0].Desc}
			}
		}
	}
	return p, nil
}

// baseCol resolves a column reference to its base-table position when it
// refers to the base side only, else -1.
func (p *selectPlan) baseCol(cr *ColumnRef, baseQual, rightQual string) int {
	var s refSides
	p.refSide(cr, baseQual, rightQual, &s)
	if !s.leftOnly() {
		return -1
	}
	return p.base.ColumnIndex(cr.Name)
}

// flipCmp mirrors a comparison operator for swapped operands; operators
// that are not order comparisons come back unchanged (LIKE is direction-
// sensitive, so a flipped LIKE never index-qualifies and "=" is symmetric).
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// rowSrc is a pull-based row iterator: next returns (nil, nil) at end of
// stream.
type rowSrc interface {
	next() (Row, error)
}

// passAll evaluates a conjunct list against one row.
func passAll(preds []Expr, e *env, r Row) (bool, error) {
	e.row = r
	for _, p := range preds {
		v, err := eval(p, e)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// Access-path kinds, as reported by PlanInfo.
const (
	accessSeqScan     = "seq-scan"
	accessIndexEq     = "index-eq"
	accessIndexIn     = "index-in"
	accessIndexRange  = "index-range"
	accessIndexNull   = "index-null"
	accessOrderedWalk = "ordered-walk"
)

// emptyIdx is the shared "indexed probe with no matches" candidate set;
// it is never mutated.
var emptyIdx = []int{}

// accessChoice is the access path picked for one execution of a plan:
// which index probe (if any) narrows the base scan, or an ordered walk
// that satisfies the ORDER BY from index order. Probes are chosen by
// candidate count — every pushed predicate is still evaluated on the
// candidates, so any choice is correct, only speed differs.
type accessChoice struct {
	kind     string
	column   string // index column, for non-scan kinds
	idx      []int  // candidate positions, ascending; nil for full scans
	walk     *orderedIndex
	walkDesc bool
}

// chooseAccess evaluates the plan's probe candidates against the bound
// parameters and current indexes, picking the narrowest. The caller must
// hold at least the database read lock. The error is a block-read
// failure while lazily building a probed ordered index on a disk table.
func (p *selectPlan) chooseAccess(args []Value) (accessChoice, error) {
	acc := accessChoice{kind: accessSeqScan}
	bv := p.base.view()
	constEnv := &env{args: args}
	best := -1 // candidate count of the current winner; -1: full scan

	type rangeSpan struct {
		ix         *orderedIndex
		start, end int
	}
	var bestSpan rangeSpan
	record := func(kind, column string, idx []int, span rangeSpan, n int) {
		if best >= 0 && n >= best {
			return
		}
		best = n
		acc.kind, acc.column, acc.idx = kind, column, idx
		bestSpan = span
	}

	// Equality probes on hash indexes.
	for _, cand := range p.eqCands {
		ix := p.base.index(p.base.Columns[cand.col].Name)
		if ix == nil {
			continue
		}
		v, err := eval(cand.val, constEnv)
		if err != nil {
			continue // let the full evaluation surface the error
		}
		bucket := ix.lookup(v)
		if bucket == nil {
			bucket = emptyIdx
		}
		record(accessIndexEq, ix.column, bucket, rangeSpan{}, len(bucket))
	}

	// IN lists multi-probe the hash index: the candidate set is the union
	// of the item buckets. Distinct items can share a bucket (numeric text
	// and numbers key identically), so the union is sorted and deduped.
	for _, cand := range p.inCands {
		ix := p.base.index(p.base.Columns[cand.col].Name)
		if ix == nil {
			continue
		}
		var union []int
		buckets, usable := 0, true
		for _, it := range cand.list {
			v, err := eval(it, constEnv)
			if err != nil || v.IsNull() {
				usable = false
				break
			}
			if b := ix.lookup(v); len(b) > 0 {
				union = append(union, b...)
				buckets++
			}
		}
		if !usable {
			continue
		}
		if buckets > 1 {
			sort.Ints(union)
			w := 0
			for i, pos := range union {
				if i == 0 || pos != union[w-1] {
					union[w] = pos
					w++
				}
			}
			union = union[:w]
		}
		if union == nil {
			union = emptyIdx
		}
		record(accessIndexIn, ix.column, union, rangeSpan{}, len(union))
	}

	// IS NULL answers directly from an ordered index's tracked NULL
	// positions (already ascending).
	for _, col := range p.nullCands {
		ox := p.base.orderedIx(p.base.Columns[col].Name)
		if ox == nil {
			continue
		}
		if err := ox.ensure(&bv); err != nil {
			return acc, err
		}
		nulls := ox.nulls
		if nulls == nil {
			nulls = emptyIdx
		}
		record(accessIndexNull, ox.column, nulls, rangeSpan{}, len(nulls))
	}

	// Range probes on ordered indexes: merge every usable bound per
	// column into one [lo, hi] span and binary-search its extent. The
	// span is materialized (positions re-sorted ascending) only if it
	// wins.
	for i, rc := range p.rangeCands {
		seen := false
		for j := 0; j < i; j++ {
			if p.rangeCands[j].col == rc.col {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		ox := p.base.orderedIx(p.base.Columns[rc.col].Name)
		if ox == nil {
			continue
		}
		var lo, hi Value
		var hasLo, hasHi, loIncl, hiIncl bool
		for j := i; j < len(p.rangeCands); j++ {
			c := p.rangeCands[j]
			if c.col != rc.col {
				continue
			}
			if c.reqNonNull != nil {
				g, err := eval(c.reqNonNull, constEnv)
				if err != nil || g.IsNull() {
					continue // this bound is unusable; others may still be
				}
			}
			v, err := eval(c.val, constEnv)
			if err != nil {
				continue
			}
			switch c.op {
			case ">", ">=":
				incl := c.op == ">="
				if !hasLo || tighterBound(v, incl, lo, loIncl, 1) {
					lo, loIncl, hasLo = v, incl, true
				}
			case "<", "<=":
				incl := c.op == "<="
				if !hasHi || tighterBound(v, incl, hi, hiIncl, -1) {
					hi, hiIncl, hasHi = v, incl, true
				}
			}
		}
		if !hasLo && !hasHi {
			continue
		}
		if err := ox.ensure(&bv); err != nil {
			return acc, err
		}
		start, end := 0, len(ox.keys)
		if hasLo {
			start = ox.lowerBound(lo, loIncl)
		}
		if hasHi {
			end = ox.upperBound(hi, hiIncl)
		}
		if end < start {
			end = start
		}
		record(accessIndexRange, ox.column, nil, rangeSpan{ix: ox, start: start, end: end}, end-start)
	}
	if acc.kind == accessIndexRange {
		// Span positions are in key order; the scan must visit them in
		// table order to match the naive executor's emission order.
		idx := make([]int, bestSpan.end-bestSpan.start)
		copy(idx, bestSpan.ix.pos[bestSpan.start:bestSpan.end])
		sort.Ints(idx)
		acc.idx = idx
	}

	// ORDER BY pushdown: stream in index order when no probe narrowed the
	// scan. (With a probe, the probe + bounded top-k sort wins: the
	// candidate positions are in table order, not key order.)
	if p.orderBy != nil && acc.kind == accessSeqScan {
		if ox := p.base.orderedIx(p.base.Columns[p.orderBy.col].Name); ox != nil {
			if err := ox.ensure(&bv); err != nil {
				return acc, err
			}
			acc.kind = accessOrderedWalk
			acc.column = ox.column
			acc.walk = ox
			acc.walkDesc = p.orderBy.desc
		}
	}
	return acc, nil
}

// tighterBound reports whether bound (v, incl) is strictly tighter than
// (cur, curIncl); dir is +1 for lower bounds, -1 for upper bounds. At
// equal values an exclusive bound beats an inclusive one.
func tighterBound(v Value, incl bool, cur Value, curIncl bool, dir int) bool {
	c := Compare(v, cur)
	if c != 0 {
		return c == dir
	}
	return curIncl && !incl
}

// hashJoinIter joins a left row stream against a hashed right table.
// When the right table already maintains a hash index on the join key
// and no predicates were pushed to the build side, the iterator probes
// that index directly — no per-query build at all. Otherwise the build
// side hashes right rows passing their pushed-down predicates. Either
// way, each probe re-evaluates the full ON expression plus post-join
// predicates on the combined row, so bucket collisions are filtered
// exactly. The combined row buffer is reused between calls — consumers
// must not retain it across next calls (projection either evaluates
// immediately or clones).
type hashJoinIter struct {
	left     rowSrc
	jp       *joinPlan
	checks   []Expr // full ON expression + post-join WHERE conjuncts
	env      *env   // combined-row environment
	rightEnv *env
	nLeft    int

	built     bool
	rightIx   *hashIndex       // reused right-table index (nil: self-built)
	rightView rowsView         // row storage rightIx positions refer to
	buckets   map[string][]Row // self-built buckets when rightIx is nil
	curRows   []Row            // current probe bucket (self-built mode)
	curPos    []int            // current probe positions (index mode)
	bucketPos int
	combined  Row
	keyBuf    []byte // reused probe-key scratch; no per-probe allocation
}

func (h *hashJoinIter) build() error {
	h.built = true
	if len(h.jp.rightPred) == 0 {
		key := h.jp.right.Columns[h.jp.rightKey].Name
		if ix := h.jp.right.index(key); ix != nil {
			h.rightIx = ix
			return nil
		}
	}
	h.buckets = make(map[string][]Row)
	n := h.rightView.total()
	for i := 0; i < n; i++ {
		r := h.rightView.row(i)
		ok, err := passAll(h.jp.rightPred, h.rightEnv, r)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if k, ok := indexKey(r[h.jp.rightKey]); ok {
			h.buckets[k] = append(h.buckets[k], r)
		}
	}
	return h.rightView.err
}

// bucketLen returns the size of the current probe bucket.
func (h *hashJoinIter) bucketLen() int {
	if h.rightIx != nil {
		return len(h.curPos)
	}
	return len(h.curRows)
}

// bucketRow returns the i-th right row of the current probe bucket; both
// modes yield rows in right-table insertion order (index positions are
// global, so they address the sealed prefix and the tail alike).
func (h *hashJoinIter) bucketRow(i int) Row {
	if h.rightIx != nil {
		return h.rightView.row(h.curPos[i])
	}
	return h.curRows[i]
}

func (h *hashJoinIter) next() (Row, error) {
	if !h.built {
		if err := h.build(); err != nil {
			return nil, err
		}
	}
	for {
		for h.bucketPos < h.bucketLen() {
			rr := h.bucketRow(h.bucketPos)
			if h.rightView.err != nil {
				return nil, h.rightView.err
			}
			h.bucketPos++
			copy(h.combined[h.nLeft:], rr)
			ok, err := passAll(h.checks, h.env, h.combined)
			if err != nil {
				return nil, err
			}
			if ok {
				return h.combined, nil
			}
		}
		lr, err := h.left.next()
		if err != nil || lr == nil {
			return nil, err
		}
		copy(h.combined, lr)
		h.curRows, h.curPos = nil, nil
		h.bucketPos = 0
		var ok bool
		if h.keyBuf, ok = appendIndexKey(h.keyBuf[:0], lr[h.jp.leftKey]); ok {
			if h.rightIx != nil {
				h.curPos = h.rightIx.buckets[string(h.keyBuf)]
			} else {
				h.curRows = h.buckets[string(h.keyBuf)]
			}
		}
	}
}

// nlJoinIter is the nested-loop fallback for non-equi joins. The right
// side is pre-filtered once with its pushed-down predicates; the full ON
// expression and post-join predicates run per pair, exactly as the naive
// executor evaluates them.
type nlJoinIter struct {
	left     rowSrc
	jp       *joinPlan
	checks   []Expr
	env      *env
	rightEnv *env
	nLeft    int

	prepared  bool
	rightView rowsView
	rightRows []Row
	curLeft   Row
	rightPos  int
	combined  Row
}

func (n *nlJoinIter) prepare() error {
	if len(n.jp.rightPred) == 0 && n.rightView.sealed == 0 {
		n.rightRows = n.rightView.tail
	} else {
		// Materialize row headers once (the backing blocks stay cached);
		// the nested loop re-walks them per left row.
		total := n.rightView.total()
		for i := 0; i < total; i++ {
			r := n.rightView.row(i)
			ok, err := passAll(n.jp.rightPred, n.rightEnv, r)
			if err != nil {
				return err
			}
			if ok {
				n.rightRows = append(n.rightRows, r)
			}
		}
		if n.rightView.err != nil {
			return n.rightView.err
		}
	}
	n.prepared = true
	return nil
}

func (n *nlJoinIter) next() (Row, error) {
	if !n.prepared {
		if err := n.prepare(); err != nil {
			return nil, err
		}
	}
	for {
		if n.curLeft == nil {
			lr, err := n.left.next()
			if err != nil || lr == nil {
				return nil, err
			}
			n.curLeft = lr
			copy(n.combined, lr)
			n.rightPos = 0
		}
		for n.rightPos < len(n.rightRows) {
			rr := n.rightRows[n.rightPos]
			n.rightPos++
			copy(n.combined[n.nLeft:], rr)
			ok, err := passAll(n.checks, n.env, n.combined)
			if err != nil {
				return nil, err
			}
			if ok {
				return n.combined, nil
			}
		}
		n.curLeft = nil
	}
}

// pipeline assembles the operator tree for a planned SELECT under the
// chosen access path.
func (p *selectPlan) pipeline(args []Value, acc accessChoice) rowSrc {
	leftEnv := &env{cols: p.cols[:p.nLeft], args: args}
	var scan rowSrc
	if acc.walk != nil {
		w := &orderedWalkIter{view: p.base.view(), ix: acc.walk, desc: acc.walkDesc}
		w.vf.bind(p.vecPreds, args, leftEnv, &w.view)
		w.hi = len(acc.walk.keys)
		scan = w
	} else {
		s := &vecScanIter{view: p.base.view(), idx: acc.idx}
		s.vf.bind(p.vecPreds, args, leftEnv, &s.view)
		// Zone-map skipping applies to full scans over sealed blocks; index
		// probes already narrowed the positions.
		s.pruneOn = acc.idx == nil && s.view.eng != nil &&
			len(s.view.blocks) > 0 && s.view.eng.pruneOn.Load()
		scan = s
	}
	if p.join == nil {
		return scan
	}

	combEnv := &env{cols: p.cols, args: args}
	rightEnv := &env{cols: p.cols[p.nLeft:], args: args}
	checks := append([]Expr{p.join.on}, p.join.postPred...)
	if p.join.leftKey >= 0 && p.join.rightKey >= 0 {
		return &hashJoinIter{
			left: scan, jp: p.join, checks: checks, env: combEnv,
			rightEnv: rightEnv, nLeft: p.nLeft,
			rightView: p.join.right.view(),
			combined:  make(Row, len(p.cols)),
		}
	}
	return &nlJoinIter{
		left: scan, jp: p.join, checks: checks, env: combEnv,
		rightEnv: rightEnv, nLeft: p.nLeft,
		rightView: p.join.right.view(),
		combined:  make(Row, len(p.cols)),
	}
}

// runPlan executes a planned SELECT, returning a Rows iterator. Plain
// scans stream; DISTINCT streams through a seen-set; ORDER BY and
// aggregate queries materialize eagerly (their Rows iterate the
// materialized output). The caller must hold at least a read lock for as
// long as a streaming Rows is in use.
func (db *Database) runPlan(st *SelectStmt, args []Value) (*Rows, error) {
	p, err := db.planSelect(st)
	if err != nil {
		return nil, err
	}
	return p.rows(args)
}

// rows executes a plan. Plans are immutable after construction, so one
// plan may run concurrently from many goroutines (each execution builds
// its own iterator state).
func (p *selectPlan) rows(args []Value) (*Rows, error) {
	st := p.st
	if p.unsafe {
		// The naive executor evaluates every row, surfacing the per-row
		// predicate errors this query can produce (it also applies
		// LIMIT itself).
		rs, err := p.db.runSelectNaive(st, args)
		if err != nil {
			return nil, err
		}
		return &Rows{Columns: rs.Columns, mat: rs.Rows, limit: -1, materialized: true}, nil
	}
	acc, err := p.chooseAccess(args)
	if err != nil {
		return nil, err
	}
	src := p.pipeline(args, acc)
	outCols := outputColumns(st, p.cols)

	if p.hasAgg {
		var rows []Row
		for {
			r, err := src.next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				break
			}
			rows = append(rows, r.clone())
		}
		rs, err := runAggregates(st, p.cols, rows)
		if err != nil {
			return nil, err
		}
		// The naive executor ignores LIMIT on all-aggregate selects; match it.
		return &Rows{Columns: rs.Columns, mat: rs.Rows, limit: -1, materialized: true}, nil
	}

	if len(st.OrderBy) > 0 {
		if acc.walk != nil {
			// The ordered walk already emits rows in ORDER BY order:
			// stream them, with LIMIT stopping the walk early instead of
			// materializing and truncating. (DISTINCT never reaches here;
			// see orderPush.)
			return &Rows{
				Columns: outCols,
				st:      st,
				src:     src,
				env:     &env{cols: p.cols, args: args},
				limit:   st.Limit,
			}, nil
		}
		mat, err := materializeOrdered(st, p.cols, src, args)
		if err != nil {
			return nil, err
		}
		return &Rows{Columns: outCols, mat: mat, limit: st.Limit, materialized: true}, nil
	}

	rows := &Rows{
		Columns: outCols,
		st:      st,
		src:     src,
		env:     &env{cols: p.cols, args: args},
		limit:   st.Limit,
	}
	if st.Distinct {
		rows.seen = make(map[string]bool)
	}
	return rows, nil
}

// projRow is one projected row awaiting the ORDER BY sort. seq is the
// arrival index: using (keys, seq) as the sort order makes the comparator
// a strict total order that reproduces a stable sort exactly, which both
// the plain sort and the bounded top-k heap rely on.
type projRow struct {
	out  []Value
	keys []Value
	seq  int
}

// materializeOrdered projects, deduplicates, and sorts the full row
// stream — the ORDER BY path, which cannot stream. When a LIMIT is
// present (and no DISTINCT), only the top LIMIT rows are retained in a
// bounded max-heap instead of sorting the full result: O(n log k) time
// and O(k) memory for a top-k query over n rows.
func materializeOrdered(st *SelectStmt, cols []qcol, src rowSrc, args []Value) ([][]Value, error) {
	less := func(a, b *projRow) bool {
		for k, key := range st.OrderBy {
			c := Compare(a.keys[k], b.keys[k])
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return a.seq < b.seq
	}
	// DISTINCT deduplicates before sorting (keeping first-in-stream
	// representatives), so it must see every row: no top-k for it.
	topK := st.Limit >= 0 && !st.Distinct

	var projected []projRow // plain mode, and the heap in top-k mode
	e := &env{cols: cols, args: args}
	seq := 0
	for {
		r, err := src.next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		e.row = r
		var out []Value
		if st.Star {
			out = r.clone()
		} else {
			out = make([]Value, len(st.Items))
			for i, it := range st.Items {
				v, err := eval(it.Expr, e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
		}
		keys := make([]Value, len(st.OrderBy))
		for i, k := range st.OrderBy {
			v, err := eval(k.Expr, e)
			if err != nil {
				v, err = aliasValue(k.Expr, st.Items, out)
				if err != nil {
					return nil, err
				}
			}
			keys[i] = v
		}
		pr := projRow{out: out, keys: keys, seq: seq}
		seq++
		if topK {
			// Max-heap of the LIMIT least rows: the root is the greatest
			// kept row, evicted when a lesser row arrives. (Projection and
			// key evaluation above still ran for every row, so evaluation
			// errors surface exactly as in the full sort.)
			switch {
			case st.Limit == 0:
			case len(projected) < st.Limit:
				projected = append(projected, pr)
				heapSiftUp(projected, len(projected)-1, less)
			case less(&pr, &projected[0]):
				projected[0] = pr
				heapSiftDown(projected, 0, less)
			}
			continue
		}
		projected = append(projected, pr)
	}
	if st.Distinct {
		seen := make(map[string]bool, len(projected))
		kept := projected[:0]
		for _, pr := range projected {
			k := rowKey(pr.out)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, pr)
		}
		projected = kept
	}
	// less is a strict total order (seq tie-break), so a plain sort
	// reproduces the naive executor's stable sort byte for byte.
	sort.Slice(projected, func(i, j int) bool {
		return less(&projected[i], &projected[j])
	})
	out := make([][]Value, len(projected))
	for i, pr := range projected {
		out[i] = pr.out
	}
	return out, nil
}

// heapSiftUp restores the max-heap property after appending at position i.
func heapSiftUp(h []projRow, i int, less func(a, b *projRow) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(&h[parent], &h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// heapSiftDown restores the max-heap property after replacing position i.
func heapSiftDown(h []projRow, i int, less func(a, b *projRow) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && less(&h[largest], &h[l]) {
			largest = l
		}
		if r < len(h) && less(&h[largest], &h[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// Rows is a streaming SELECT result. Typical use:
//
//	rows, err := stmt.QueryStream(args...)
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row()
//	    ...
//	}
//	err = rows.Err()
//
// A streaming Rows holds the database's read lock until Close (or
// exhaustion); callers must Close promptly and must not execute write
// statements on the same database from the same goroutine while
// iterating. The slice returned by Row is owned by the iterator only
// until the following Next call for SELECT * queries; projected rows are
// freshly allocated.
type Rows struct {
	Columns []string

	st    *SelectStmt
	src   rowSrc
	env   *env
	seen  map[string]bool // DISTINCT
	limit int             // -1: none

	mat          [][]Value // ORDER BY / aggregate output
	materialized bool
	matPos       int

	cur     []Value
	emitted int
	err     error
	done    bool
	unlock  func()
}

// Next advances to the next result row, returning false at the end of
// the stream or on error (check Err).
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	if r.limit >= 0 && r.emitted >= r.limit {
		r.finish()
		return false
	}
	if r.materialized {
		if r.matPos >= len(r.mat) {
			r.finish()
			return false
		}
		r.cur = r.mat[r.matPos]
		r.matPos++
		r.emitted++
		return true
	}
	for {
		row, err := r.src.next()
		if err != nil {
			r.err = err
			r.finish()
			return false
		}
		if row == nil {
			r.finish()
			return false
		}
		var out []Value
		if r.st.Star {
			out = row.clone()
		} else {
			r.env.row = row
			out = make([]Value, len(r.st.Items))
			for i, it := range r.st.Items {
				v, err := eval(it.Expr, r.env)
				if err != nil {
					r.err = err
					r.finish()
					return false
				}
				out[i] = v
			}
		}
		if r.seen != nil {
			k := rowKey(out)
			if r.seen[k] {
				continue
			}
			r.seen[k] = true
		}
		r.cur = out
		r.emitted++
		return true
	}
}

// Row returns the current row. Valid only after a true Next.
func (r *Rows) Row() []Value { return r.cur }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// finish releases resources; further Next calls return false.
func (r *Rows) finish() {
	if r.done {
		return
	}
	r.done = true
	if r.unlock != nil {
		r.unlock()
		r.unlock = nil
	}
}

// Close releases the read lock a streaming Rows holds. It is safe to call
// multiple times and after exhaustion.
func (r *Rows) Close() { r.finish() }

// drain materializes the remaining rows into a ResultSet.
func (r *Rows) drain() (*ResultSet, error) {
	rs := &ResultSet{Columns: r.Columns}
	for r.Next() {
		rs.Rows = append(rs.Rows, r.Row())
	}
	if r.err != nil {
		return nil, r.err
	}
	return rs, nil
}
