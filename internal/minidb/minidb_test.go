package minidb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// execDB builds a database pre-loaded with a small executions table shaped
// like the paper's HPL store.
func execDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustExec(`CREATE TABLE executions (runid INT, numprocesses INT, rundate TEXT, gflops FLOAT)`)
	rows := []string{
		`(100, 2, '2004-03-15', 1.5)`,
		`(101, 4, '2004-03-15', 2.8)`,
		`(102, 8, '2004-03-16', 5.1)`,
		`(103, 16, '2004-03-16', 9.9)`,
		`(104, 2, '2004-03-17', 1.6)`,
	}
	db.MustExec(`INSERT INTO executions VALUES ` + strings.Join(rows, ", "))
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT runid FROM executions WHERE numprocesses = 2 ORDER BY runid`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"100"}, {"104"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
	if !reflect.DeepEqual(rs.Columns, []string{"runid"}) {
		t.Errorf("columns = %v", rs.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT * FROM executions WHERE runid = 102`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || len(rs.Rows[0]) != 4 {
		t.Fatalf("got %v", rs.Strings())
	}
	if rs.Rows[0][3].Kind != KindFloat || rs.Rows[0][3].Float != 5.1 {
		t.Errorf("gflops cell = %+v", rs.Rows[0][3])
	}
}

func TestWhereOperators(t *testing.T) {
	db := execDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{`numprocesses = 4`, 1},
		{`numprocesses != 2`, 3},
		{`numprocesses < 8`, 3},
		{`numprocesses <= 8`, 4},
		{`numprocesses > 8`, 1},
		{`numprocesses >= 8`, 2},
		{`numprocesses = 2 AND rundate = '2004-03-17'`, 1},
		{`numprocesses = 2 OR numprocesses = 4`, 3},
		{`NOT numprocesses = 2`, 3},
		{`(numprocesses = 2 OR numprocesses = 4) AND rundate = '2004-03-15'`, 2},
		{`rundate LIKE '2004-03-1%'`, 5},
		{`rundate LIKE '%-16'`, 2},
		{`rundate LIKE '2004-03-1_'`, 5},
		{`rundate NOT LIKE '%-16'`, 3},
		{`runid IN (100, 103)`, 2},
		{`runid NOT IN (100, 103)`, 3},
		{`runid BETWEEN 101 AND 103`, 3},
		{`runid NOT BETWEEN 101 AND 103`, 2},
		{`gflops > 2.0`, 3},
		{`gflops IS NULL`, 0},
		{`gflops IS NOT NULL`, 5},
	}
	for _, c := range cases {
		rs, err := db.Query(`SELECT runid FROM executions WHERE ` + c.where)
		if err != nil {
			t.Errorf("WHERE %s: %v", c.where, err)
			continue
		}
		if len(rs.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(rs.Rows), c.want)
		}
	}
}

func TestTextNumberEquality(t *testing.T) {
	// The paper's wrappers pass all values as strings; '2' must match
	// integer column values.
	db := execDB(t)
	rs, err := db.Query(`SELECT runid FROM executions WHERE numprocesses = '2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("text/number equality: got %d rows, want 2", len(rs.Rows))
	}
}

func TestDistinct(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT DISTINCT rundate FROM executions ORDER BY rundate`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"2004-03-15"}, {"2004-03-16"}, {"2004-03-17"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT runid FROM executions ORDER BY gflops DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"103"}, {"102"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT runid FROM executions ORDER BY rundate ASC, numprocesses DESC`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"101"}, {"100"}, {"103"}, {"102"}, {"104"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestOrderByAlias(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT runid AS r FROM executions ORDER BY r DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Strings()[0][0] != "104" {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestAggregates(t *testing.T) {
	db := execDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT COUNT(*) FROM executions`, "5"},
		{`SELECT COUNT(runid) FROM executions WHERE numprocesses = 2`, "2"},
		{`SELECT COUNT(DISTINCT rundate) FROM executions`, "3"},
		{`SELECT MIN(gflops) FROM executions`, "1.5"},
		{`SELECT MAX(gflops) FROM executions`, "9.9"},
		{`SELECT SUM(numprocesses) FROM executions`, "32"},
		{`SELECT AVG(numprocesses) FROM executions WHERE numprocesses <= 4`, "2.6666666666666665"},
	}
	for _, c := range cases {
		rs, err := db.Query(c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if len(rs.Rows) != 1 || rs.Rows[0][0].String() != c.want {
			t.Errorf("%s: got %v, want %s", c.sql, rs.Strings(), c.want)
		}
	}
}

func TestMultipleAggregatesOneRow(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT MIN(runid), MAX(runid), COUNT(*) FROM executions`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"100", "104", "5"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestAggregateOverEmptySet(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query(`SELECT COUNT(*), MIN(gflops), SUM(gflops) FROM executions WHERE runid = 999`)
	if err != nil {
		t.Fatal(err)
	}
	row := rs.Rows[0]
	if row[0].String() != "0" || !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("empty aggregates: %v", rs.Strings())
	}
}

func TestJoin(t *testing.T) {
	db := execDB(t)
	db.MustExec(`CREATE TABLE results (runid INT, metric TEXT, value FLOAT)`)
	db.MustExec(`INSERT INTO results VALUES (100, 'gflops', 1.5), (100, 'runtimesec', 320.0), (102, 'gflops', 5.1)`)
	rs, err := db.Query(`
		SELECT e.runid, r.metric, r.value
		FROM executions e
		JOIN results r ON e.runid = r.runid
		WHERE e.numprocesses = 2
		ORDER BY r.metric`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"100", "gflops", "1.5"}, {"100", "runtimesec", "320"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestJoinStarQualifiesDuplicates(t *testing.T) {
	db := execDB(t)
	db.MustExec(`CREATE TABLE results (runid INT, value FLOAT)`)
	db.MustExec(`INSERT INTO results VALUES (100, 1.0)`)
	rs, err := db.Query(`SELECT * FROM executions e JOIN results r ON e.runid = r.runid`)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, c := range rs.Columns {
		if c == "e.runid" || c == "r.runid" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("duplicate columns not qualified: %v", rs.Columns)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := execDB(t)
	db.MustExec(`CREATE TABLE results (runid INT, value FLOAT)`)
	db.MustExec(`INSERT INTO results VALUES (100, 1.0)`)
	_, err := db.Query(`SELECT runid FROM executions e JOIN results r ON e.runid = r.runid`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguous-column error, got %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := execDB(t)
	n, err := db.Exec(`DELETE FROM executions WHERE numprocesses = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted %d, want 2", n)
	}
	if rows, _ := db.NumRows("executions"); rows != 3 {
		t.Errorf("remaining rows %d, want 3", rows)
	}
	n, err = db.Exec(`DELETE FROM executions`)
	if err != nil || n != 3 {
		t.Errorf("delete all: n=%d err=%v", n, err)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT, b TEXT, c FLOAT)`)
	db.MustExec(`INSERT INTO t (c, a) VALUES (2.5, 7)`)
	rs, err := db.Query(`SELECT a, b, c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	row := rs.Rows[0]
	if row[0].String() != "7" || !row[1].IsNull() || row[2].String() != "2.5" {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT, b FLOAT, c TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('42', '3.5', 99)`)
	rs, err := db.Query(`SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	row := rs.Rows[0]
	if row[0].Kind != KindInt || row[0].Int != 42 {
		t.Errorf("a = %+v", row[0])
	}
	if row[1].Kind != KindFloat || row[1].Float != 3.5 {
		t.Errorf("b = %+v", row[1])
	}
	if row[2].Kind != KindText || row[2].Text != "99" {
		t.Errorf("c = %+v", row[2])
	}
}

func TestErrors(t *testing.T) {
	db := execDB(t)
	cases := []string{
		`SELECT nope FROM executions`,
		`SELECT runid FROM missing`,
		`SELECT runid FROM executions WHERE`,
		`SELECT FROM executions`,
		`INSERT INTO missing VALUES (1)`,
		`INSERT INTO executions VALUES (1)`,
		`CREATE TABLE executions (x INT)`,
		`DROP TABLE missing`,
		`DELETE FROM missing`,
		`SELECT runid, COUNT(*) FROM executions`,
		`SELECT SUM(rundate) FROM executions`,
		`SELECT MAX(*) FROM executions`,
		`SELECT runid FROM executions LIMIT x`,
		`SELECT runid FROM executions trailing junk here`,
		`BOGUS STATEMENT`,
		`SELECT runid FROM executions WHERE rundate = 'unterminated`,
	}
	for _, sql := range cases {
		if _, err := db.Query(sql); err == nil {
			if _, err2 := db.Exec(sql); err2 == nil {
				t.Errorf("%s: want error", sql)
			}
		}
	}
}

func TestExecQueryMisuse(t *testing.T) {
	db := execDB(t)
	if _, err := db.Exec(`SELECT * FROM executions`); err == nil {
		t.Error("Exec(SELECT): want error")
	}
	if _, err := db.Query(`DELETE FROM executions`); err == nil {
		t.Error("Query(DELETE): want error")
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (s TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('it''s a test')`)
	rs, err := db.Query(`SELECT s FROM t WHERE s = 'it''s a test'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text != "it's a test" {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestComments(t *testing.T) {
	db := execDB(t)
	rs, err := db.Query("SELECT runid -- trailing comment\nFROM executions -- another\nWHERE runid = 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestKeywordAsColumnName(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (count INT, min TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (3, 'x')`)
	rs, err := db.Query(`SELECT count, min FROM t WHERE count = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].String() != "3" {
		t.Errorf("got %v", rs.Strings())
	}
}

func TestInsertRowBulk(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT, b TEXT)`)
	for i := 0; i < 100; i++ {
		if err := db.InsertRow("t", Int(int64(i)), Text(fmt.Sprintf("row%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := db.NumRows("t"); n != 100 {
		t.Errorf("rows = %d", n)
	}
	if err := db.InsertRow("t", Int(1)); err == nil {
		t.Error("arity mismatch: want error")
	}
	if err := db.InsertRow("missing", Int(1)); err == nil {
		t.Error("missing table: want error")
	}
}

func TestTableNames(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE zebra (a INT)`)
	db.MustExec(`CREATE TABLE alpha (a INT)`)
	if got := db.TableNames(); !reflect.DeepEqual(got, []string{"alpha", "zebra"}) {
		t.Errorf("TableNames = %v", got)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT)`)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, w*100+i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM t`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := db.NumRows("t"); n != 200 {
		t.Errorf("rows = %d, want 200", n)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"a%", "bac", false},
		{"%c", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"a%c%e", "abcde", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"%%%", "x", true},
		{"/Code/MPI/%", "/Code/MPI/MPI_Send", true},
		{"/Code/MPI/%", "/Code/POSIX/read", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(1), 1},
		{Int(1), Float(1.0), 0},
		{Text("a"), Text("b"), -1},
		{Null(), Int(0), -1},
		{Null(), Null(), 0},
		{Int(5), Text("a"), -1}, // numbers before text
		{Text("a"), Int(5), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: inserted text values are returned verbatim by SELECT.
func TestQuickInsertSelectRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE rt (id INT, s TEXT)`)
	id := int64(0)
	f := func(s string) bool {
		s = strings.ToValidUTF8(s, "?")
		id++
		if err := db.InsertRow("rt", Int(id), Text(s)); err != nil {
			return false
		}
		rs, err := db.Query(fmt.Sprintf(`SELECT s FROM rt WHERE id = %d`, id))
		if err != nil || len(rs.Rows) != 1 {
			return false
		}
		return rs.Rows[0][0].Text == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of inserted rows for any row count.
func TestQuickCountMatchesInserts(t *testing.T) {
	f := func(n uint8) bool {
		db := NewDatabase()
		db.MustExec(`CREATE TABLE t (a INT)`)
		for i := 0; i < int(n); i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
		}
		rs, err := db.Query(`SELECT COUNT(*) FROM t`)
		if err != nil {
			return false
		}
		return rs.Rows[0][0].Int == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUpdate(t *testing.T) {
	db := execDB(t)
	n, err := db.Exec(`UPDATE executions SET gflops = 99.9 WHERE runid = 100`)
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	rs, _ := db.Query(`SELECT gflops FROM executions WHERE runid = 100`)
	if rs.Rows[0][0].Float != 99.9 {
		t.Errorf("gflops = %v", rs.Rows[0][0])
	}
	// Multi-column update with column references evaluated pre-update.
	db.MustExec(`UPDATE executions SET numprocesses = runid, rundate = 'moved' WHERE runid = 101`)
	rs, _ = db.Query(`SELECT numprocesses, rundate FROM executions WHERE runid = 101`)
	if rs.Rows[0][0].Int != 101 || rs.Rows[0][1].Text != "moved" {
		t.Errorf("multi-set: %v", rs.Strings())
	}
	// Update without WHERE touches every row.
	n, err = db.Exec(`UPDATE executions SET rundate = 'x'`)
	if err != nil || n != 5 {
		t.Errorf("update all: n=%d err=%v", n, err)
	}
	// Errors.
	if _, err := db.Exec(`UPDATE executions SET nope = 1`); err == nil {
		t.Error("unknown column: want error")
	}
	if _, err := db.Exec(`UPDATE missing SET a = 1`); err == nil {
		t.Error("unknown table: want error")
	}
	if _, err := db.Exec(`UPDATE executions SET`); err == nil {
		t.Error("missing assignments: want error")
	}
	// Coercion respects column types.
	db.MustExec(`UPDATE executions SET numprocesses = '7' WHERE runid = 102`)
	rs, _ = db.Query(`SELECT numprocesses FROM executions WHERE runid = 102`)
	if rs.Rows[0][0].Kind != KindInt || rs.Rows[0][0].Int != 7 {
		t.Errorf("coercion: %+v", rs.Rows[0][0])
	}
}

func TestUpdateSwapSemantics(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT, b INT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 2)`)
	db.MustExec(`UPDATE t SET a = b, b = a`)
	rs, _ := db.Query(`SELECT a, b FROM t`)
	if rs.Rows[0][0].Int != 2 || rs.Rows[0][1].Int != 1 {
		t.Errorf("swap failed: %v", rs.Strings())
	}
}

// TestQuickWhereOracle generates random predicate trees, renders them both
// as SQL and as a Go closure, and requires the engine's row count to match
// the oracle's on random data.
func TestQuickWhereOracle(t *testing.T) {
	type row struct{ a, b int64 }
	gen := rand.New(rand.NewSource(99))

	// predicate builds a random tree of depth <= 2 and returns (sql, eval).
	var predicate func(depth int) (string, func(row) bool)
	predicate = func(depth int) (string, func(row) bool) {
		if depth <= 0 || gen.Intn(3) == 0 {
			col := "a"
			get := func(r row) int64 { return r.a }
			if gen.Intn(2) == 0 {
				col = "b"
				get = func(r row) int64 { return r.b }
			}
			k := int64(gen.Intn(21) - 10)
			switch gen.Intn(6) {
			case 0:
				return fmt.Sprintf("%s = %d", col, k), func(r row) bool { return get(r) == k }
			case 1:
				return fmt.Sprintf("%s != %d", col, k), func(r row) bool { return get(r) != k }
			case 2:
				return fmt.Sprintf("%s < %d", col, k), func(r row) bool { return get(r) < k }
			case 3:
				return fmt.Sprintf("%s <= %d", col, k), func(r row) bool { return get(r) <= k }
			case 4:
				return fmt.Sprintf("%s > %d", col, k), func(r row) bool { return get(r) > k }
			default:
				return fmt.Sprintf("%s >= %d", col, k), func(r row) bool { return get(r) >= k }
			}
		}
		ls, lf := predicate(depth - 1)
		rs, rf := predicate(depth - 1)
		switch gen.Intn(3) {
		case 0:
			return fmt.Sprintf("(%s AND %s)", ls, rs), func(r row) bool { return lf(r) && rf(r) }
		case 1:
			return fmt.Sprintf("(%s OR %s)", ls, rs), func(r row) bool { return lf(r) || rf(r) }
		default:
			return fmt.Sprintf("NOT (%s)", ls), func(r row) bool { return !lf(r) }
		}
	}

	for trial := 0; trial < 40; trial++ {
		db := NewDatabase()
		db.MustExec(`CREATE TABLE t (a INT, b INT)`)
		rows := make([]row, 30)
		for i := range rows {
			rows[i] = row{a: int64(gen.Intn(21) - 10), b: int64(gen.Intn(21) - 10)}
			if err := db.InsertRow("t", Int(rows[i].a), Int(rows[i].b)); err != nil {
				t.Fatal(err)
			}
		}
		sql, eval := predicate(2)
		rs, err := db.Query("SELECT COUNT(*) FROM t WHERE " + sql)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, sql, err)
		}
		want := int64(0)
		for _, r := range rows {
			if eval(r) {
				want++
			}
		}
		if got := rs.Rows[0][0].Int; got != want {
			t.Errorf("trial %d: WHERE %s: engine %d, oracle %d", trial, sql, got, want)
		}
	}
}

func TestNegativeLiterals(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT, f FLOAT)`)
	db.MustExec(`INSERT INTO t VALUES (-5, -2.5), (+3, +1.5)`)
	rs, err := db.Query(`SELECT a FROM t WHERE a < -1 OR f >= +1.5 ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"-5"}, {"3"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v", rs.Strings())
	}
	if _, err := db.Query(`SELECT a FROM t WHERE a = -'x'`); err == nil {
		t.Error("unary minus on string: want error")
	}
	// A spaced double negative nests legally and evaluates to +5
	// (adjacent "--" would instead start a comment).
	rs, err = db.Query(`SELECT a FROM t WHERE a = - -5`)
	if err != nil || len(rs.Rows) != 0 {
		t.Errorf("double unary: %v, %v", rs, err)
	}
}
