// Differential tests for the vectorized result path: every query runs
// once through the retained row-at-a-time iterator (Rows.Next — the
// oracle) and once through NextBatch with randomized batch sizes, and the
// delivered row streams must match exactly, terminal errors included.
package minidb_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pperfgrid/internal/minidb"
)

// drainNext collects a query's rows through the row-at-a-time oracle.
func drainNext(db *minidb.Database, q string) ([][]string, error) {
	st, err := db.Prepare(q)
	if err != nil {
		return nil, err
	}
	rows, err := st.QueryStream()
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out [][]string
	for rows.Next() {
		row := rows.Row()
		s := make([]string, len(row))
		for i, v := range row {
			s[i] = v.String()
		}
		out = append(out, s)
	}
	return out, rows.Err()
}

// drainBatch collects the same rows through NextBatch.
func drainBatch(db *minidb.Database, q string, max int) ([][]string, error) {
	st, err := db.Prepare(q)
	if err != nil {
		return nil, err
	}
	rows, err := st.QueryStream()
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	b := minidb.NewBatch()
	defer b.Release()
	var out [][]string
	for rows.NextBatch(b, max) {
		for r := 0; r < b.Rows(); r++ {
			s := make([]string, b.Cols())
			for c := range s {
				s[c] = b.At(c, r).String()
			}
			out = append(out, s)
		}
	}
	return out, rows.Err()
}

func assertBatchMatchesNext(t *testing.T, db *minidb.Database, q string, max int) {
	t.Helper()
	want, wantErr := drainNext(db, q)
	got, gotErr := drainBatch(db, q, max)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("error divergence for %q (max=%d):\nbatch err: %v\nnext err:  %v", q, max, gotErr, wantErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("row divergence for %q (max=%d):\nbatch %v\nnext  %v", q, max, got, want)
	}
}

func TestNextBatchMatchesNext(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db := starDB(t, seed)
			rng := rand.New(rand.NewSource(seed * 104729))
			for i := 0; i < 120; i++ {
				q := randStarQuery(rng)
				max := []int{0, 1, 2, 3, 7, 64, 10000}[rng.Intn(7)]
				assertBatchMatchesNext(t, db, q, max)
			}
		})
	}
}

// TestNextBatchErrorShapes pins stream-time error parity: a projection
// that errors per row must terminate both iterators with the same error,
// and a DISTINCT stream must dedup identically across batch boundaries.
func TestNextBatchErrorShapes(t *testing.T) {
	db := starDB(t, 1)
	for _, q := range []string{
		"SELECT nosuchcol FROM results",
		"SELECT COUNT(value) FROM results WHERE nosuch = 1",
		"SELECT DISTINCT metricid, execid FROM results",
		"SELECT DISTINCT metricid FROM results LIMIT 2",
		"SELECT value FROM results LIMIT 0",
		"SELECT value FROM results WHERE execid = 'absent'",
	} {
		for _, max := range []int{1, 3, 1000} {
			assertBatchMatchesNext(t, db, q, max)
		}
	}
}

// TestBatchScanAllocs pins the vectorized path's allocation profile: a
// warmed fact-join scan through NextBatch costs a small per-query
// constant, not one allocation per row as the oracle's projection does.
func TestBatchScanAllocs(t *testing.T) {
	db := starDB(t, 2)
	const q = "SELECT f.path, r.starttime, r.endtime, r.value, r.typeid " +
		"FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = '1'"
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	b := minidb.NewBatch()
	defer b.Release()
	nrows := 0
	drain := func() {
		rows, err := st.QueryStream()
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		nrows = 0
		for rows.NextBatch(b, 0) {
			nrows += b.Rows()
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
	}
	drain() // warm the plan cache and the batch's backing arrays
	if nrows == 0 {
		t.Fatal("scan returned no rows; the allocation pin would be vacuous")
	}
	allocs := testing.AllocsPerRun(20, drain)
	if allocs > 24 {
		t.Fatalf("warmed batch scan of %d rows allocates %.1f times per query, want a small constant (<= 24)", nrows, allocs)
	}
	t.Logf("warmed batch scan: %d rows, %.1f allocs/query", nrows, allocs)
}

// TestIndexProbeAllocs pins the satellite fix for the per-probe key
// garbage: a warmed indexed point query allocates no per-probe key
// strings on its scan side.
func TestIndexProbeAllocs(t *testing.T) {
	db := starDB(t, 3)
	st, err := db.Prepare("SELECT value FROM results WHERE execid = '2'")
	if err != nil {
		t.Fatal(err)
	}
	b := minidb.NewBatch()
	defer b.Release()
	drain := func() {
		rows, err := st.QueryStream()
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		for rows.NextBatch(b, 0) {
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
	}
	drain()
	before := testing.AllocsPerRun(50, drain)
	if before > 16 {
		t.Fatalf("warmed indexed probe allocates %.1f times per query, want a small constant (<= 16)", before)
	}
}
