package minidb

// This file is the vectorized half of the base scan. At plan time each
// pushed-down base-scan conjunct is compiled to a vecPred kernel; at
// execution time the kernels are bound to concrete constant operands and
// applied predicate-at-a-time over selection-vector blocks of row
// positions (vecBlockSize at a time), compacting the selection in place.
// That replaces the per-row eval tree walk with tight loops over one
// column each — the residual-predicate cost at million-row scale.
//
// Every kernel replicates eval's semantics exactly (the differential
// tests pin this): comparisons are false when either side is NULL,
// BETWEEN is pure Compare with no NULL short-circuit, IN uses Equal
// (where Equal(NULL, NULL) is true), and anything the compiler does not
// recognize falls back to row-at-a-time eval of the original expression.

// vpKind discriminates compiled kernel shapes.
type vpKind uint8

const (
	vpFallback vpKind = iota // row-at-a-time eval of expr
	vpConst                  // no column references: one eval per execution
	vpTruthy                 // bare base-column reference
	vpCmp                    // col <op> const (=, !=, <, <=, >, >=, LIKE)
	vpBetween                // col [NOT] BETWEEN const AND const
	vpIn                     // col [NOT] IN (consts)
	vpIsNull                 // col IS [NOT] NULL
)

// vecPred is the plan-time compiled form of one base-scan conjunct. Like
// the rest of a selectPlan it is immutable after planning; per-execution
// operand values live in boundVec.
type vecPred struct {
	kind vpKind
	col  int    // base column position (vpTruthy..vpIsNull)
	op   string // vpCmp
	neg  bool   // vpBetween / vpIn / vpIsNull
	args []Expr // constant operands (vpCmp: 1, vpBetween: 2, vpIn: n)
	expr Expr   // original conjunct (vpFallback / vpConst)
}

// compileVec compiles one pushed-down conjunct to a kernel, falling back
// to row-at-a-time eval for shapes it does not recognize.
func (p *selectPlan) compileVec(c Expr, baseQual, rightQual string) vecPred {
	if isConst(c) {
		return vecPred{kind: vpConst, expr: c}
	}
	switch x := c.(type) {
	case *ColumnRef:
		if col := p.baseCol(x, baseQual, rightQual); col >= 0 {
			return vecPred{kind: vpTruthy, col: col}
		}
	case *Binary:
		switch x.Op {
		case "=", "!=", "<", "<=", ">", ">=", "LIKE":
		default:
			return vecPred{kind: vpFallback, expr: c}
		}
		op := x.Op
		ref, val := x.L, x.R
		flipped := false
		if _, ok := ref.(*ColumnRef); !ok {
			ref, val = x.R, x.L
			op = flipCmp(op)
			flipped = true
		}
		cr, ok := ref.(*ColumnRef)
		if !ok || !isConst(val) {
			break
		}
		if op == "LIKE" && flipped {
			break // LIKE is direction-sensitive: 'pat' LIKE col stays on eval
		}
		if col := p.baseCol(cr, baseQual, rightQual); col >= 0 {
			return vecPred{kind: vpCmp, col: col, op: op, args: []Expr{val}}
		}
	case *Between:
		cr, ok := x.X.(*ColumnRef)
		if !ok || !isConst(x.Lo) || !isConst(x.Hi) {
			break
		}
		if col := p.baseCol(cr, baseQual, rightQual); col >= 0 {
			return vecPred{kind: vpBetween, col: col, neg: x.Negate, args: []Expr{x.Lo, x.Hi}}
		}
	case *InList:
		cr, ok := x.X.(*ColumnRef)
		if !ok {
			break
		}
		allConst := true
		for _, it := range x.List {
			if !isConst(it) {
				allConst = false
				break
			}
		}
		if !allConst {
			break
		}
		if col := p.baseCol(cr, baseQual, rightQual); col >= 0 {
			return vecPred{kind: vpIn, col: col, neg: x.Negate, args: x.List}
		}
	case *IsNull:
		cr, ok := x.X.(*ColumnRef)
		if !ok {
			break
		}
		if col := p.baseCol(cr, baseQual, rightQual); col >= 0 {
			return vecPred{kind: vpIsNull, col: col, neg: x.Negate}
		}
	}
	return vecPred{kind: vpFallback, expr: c}
}

// boundVec is one kernel bound to its per-execution operand values.
type boundVec struct {
	pred     *vecPred
	a, b     Value   // vpCmp (a) / vpBetween (a=lo, b=hi)
	list     []Value // vpIn
	drop     bool    // vpConst that evaluated truthy: no-op
	none     bool    // vpConst that evaluated falsy: rejects every row
	fallback bool    // operand binding failed: degrade to row-at-a-time eval
}

// vecFilter applies a plan's kernels to selection-vector blocks. It is
// per-execution state, embedded by value in the scan iterators; view
// points at the owning iterator's rowsView so kernels read sealed blocks
// and the in-memory tail through one position-addressed interface.
type vecFilter struct {
	kernels []boundVec
	env     *env // fallback-eval environment (base columns)
	view    *rowsView
}

// bind evaluates each kernel's constant operands for this execution. A
// binding error degrades that kernel to fallback so the error surfaces
// per row exactly where the row-at-a-time path would raise it.
func (vf *vecFilter) bind(preds []vecPred, args []Value, e *env, view *rowsView) {
	vf.env = e
	vf.view = view
	if len(preds) == 0 {
		return
	}
	vf.kernels = make([]boundVec, len(preds))
	constEnv := &env{args: args}
	for i := range preds {
		vp := &preds[i]
		bv := &vf.kernels[i]
		bv.pred = vp
		switch vp.kind {
		case vpConst:
			v, err := eval(vp.expr, constEnv)
			if err != nil {
				bv.fallback = true
				break
			}
			if v.Truthy() {
				bv.drop = true
			} else {
				bv.none = true
			}
		case vpCmp:
			v, err := eval(vp.args[0], constEnv)
			if err != nil {
				bv.fallback = true
				break
			}
			bv.a = v
		case vpBetween:
			lo, err1 := eval(vp.args[0], constEnv)
			hi, err2 := eval(vp.args[1], constEnv)
			if err1 != nil || err2 != nil {
				bv.fallback = true
				break
			}
			bv.a, bv.b = lo, hi
		case vpIn:
			list := make([]Value, len(vp.args))
			for j, it := range vp.args {
				v, err := eval(it, constEnv)
				if err != nil {
					bv.fallback = true
					break
				}
				list[j] = v
			}
			if !bv.fallback {
				bv.list = list
			}
		}
	}
}

// filter runs every kernel over sel, compacting it in place, and returns
// the surviving positions (a prefix of sel's backing array).
func (vf *vecFilter) filter(sel []int) ([]int, error) {
	for k := range vf.kernels {
		if len(sel) == 0 {
			return sel, nil
		}
		bv := &vf.kernels[k]
		if bv.drop {
			continue
		}
		if bv.none {
			return sel[:0], nil
		}
		kind := bv.pred.kind
		if bv.fallback {
			kind = vpFallback
		}
		var err error
		sel, err = vf.apply(bv, kind, sel)
		if err != nil {
			return nil, err
		}
	}
	return sel, nil
}

func (vf *vecFilter) apply(bv *boundVec, kind vpKind, sel []int) ([]int, error) {
	v := vf.view
	col := bv.pred.col
	w := 0
	switch kind {
	case vpTruthy:
		for _, pos := range sel {
			if v.row(pos)[col].Truthy() {
				sel[w] = pos
				w++
			}
		}
	case vpIsNull:
		neg := bv.pred.neg
		for _, pos := range sel {
			if v.row(pos)[col].IsNull() != neg {
				sel[w] = pos
				w++
			}
		}
	case vpCmp:
		a := bv.a
		if a.IsNull() {
			return sel[:0], nil // comparisons with NULL are false for every row
		}
		switch bv.pred.op {
		case "=":
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && Equal(r, a) {
					sel[w] = pos
					w++
				}
			}
		case "!=":
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && !Equal(r, a) {
					sel[w] = pos
					w++
				}
			}
		case "<":
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && Compare(r, a) < 0 {
					sel[w] = pos
					w++
				}
			}
		case "<=":
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && Compare(r, a) <= 0 {
					sel[w] = pos
					w++
				}
			}
		case ">":
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && Compare(r, a) > 0 {
					sel[w] = pos
					w++
				}
			}
		case ">=":
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && Compare(r, a) >= 0 {
					sel[w] = pos
					w++
				}
			}
		case "LIKE":
			pat := a.String()
			for _, pos := range sel {
				if r := v.row(pos)[col]; !r.IsNull() && likeMatch(pat, r.String()) {
					sel[w] = pos
					w++
				}
			}
		}
	case vpBetween:
		lo, hi, neg := bv.a, bv.b, bv.pred.neg
		for _, pos := range sel {
			r := v.row(pos)[col]
			in := Compare(r, lo) >= 0 && Compare(r, hi) <= 0
			if in != neg {
				sel[w] = pos
				w++
			}
		}
	case vpIn:
		neg := bv.pred.neg
		for _, pos := range sel {
			r := v.row(pos)[col]
			match := false
			for _, iv := range bv.list {
				if Equal(r, iv) {
					match = true
					break
				}
			}
			if match != neg {
				sel[w] = pos
				w++
			}
		}
	default: // vpFallback
		e := vf.env
		for _, pos := range sel {
			e.row = v.row(pos)
			val, err := eval(bv.pred.expr, e)
			if err != nil {
				return nil, err
			}
			if val.Truthy() {
				sel[w] = pos
				w++
			}
		}
	}
	return sel[:w], nil
}

// vecBlockSize is the selection-vector block width: big enough to
// amortize per-block overhead, small enough to stay cache-resident.
const vecBlockSize = 256

// pruneBlock reports whether a block's zone map proves no row in it can
// satisfy every bound kernel, so the scan may skip the block without
// decoding it. Only Compare-based kernel shapes prune (the zone map
// stores Compare-order extremes; Equal folds numeric text across kinds,
// so =, !=, LIKE, and IN are never zone-bounded) — with one exception:
// an all-NULL column prunes any vpCmp op, since every comparison kernel
// rejects NULL rows outright. The rules mirror apply() exactly; the
// differential tests pin pruned scans against the naive executor.
func pruneBlock(zm []zoneEntry, kernels []boundVec) bool {
	for k := range kernels {
		bv := &kernels[k]
		if bv.drop || bv.fallback {
			continue
		}
		if bv.none {
			return true // a falsy const conjunct rejects every row
		}
		pred := bv.pred
		if pred.col >= len(zm) {
			continue
		}
		z := &zm[pred.col]
		allNull := z.nulls >= vecBlockSize
		switch pred.kind {
		case vpTruthy:
			if allNull {
				return true // NULL is never truthy
			}
		case vpIsNull:
			if !pred.neg && z.nulls == 0 {
				return true
			}
			if pred.neg && allNull {
				return true
			}
		case vpCmp:
			if bv.a.IsNull() || allNull {
				// apply() rejects every row when the operand is NULL, and
				// every comparison rejects NULL rows.
				return true
			}
			switch pred.op {
			case "<":
				if Compare(z.min, bv.a) >= 0 {
					return true
				}
			case "<=":
				if Compare(z.min, bv.a) > 0 {
					return true
				}
			case ">":
				if Compare(z.max, bv.a) <= 0 {
					return true
				}
			case ">=":
				if Compare(z.max, bv.a) < 0 {
					return true
				}
			}
		case vpBetween:
			lo, hi := bv.a, bv.b
			// in(NULL) = Compare(NULL,lo)>=0 && Compare(NULL,hi)<=0; NULL is
			// the global minimum under Compare, so the second clause always
			// holds and the first holds exactly when lo is NULL.
			nullIn := lo.IsNull()
			if !pred.neg {
				overlap := !allNull && Compare(z.max, lo) >= 0 && Compare(z.min, hi) <= 0
				if !overlap && !(z.nulls > 0 && nullIn) {
					return true
				}
			} else {
				// NOT BETWEEN keeps rows outside [lo, hi]; prune only if every
				// row — non-NULL extremes and any NULLs — is inside.
				nonNullAllIn := allNull ||
					(Compare(z.min, lo) >= 0 && Compare(z.max, hi) <= 0)
				if nonNullAllIn && (z.nulls == 0 || nullIn) {
					return true
				}
			}
		}
	}
	return false
}

// vecScanIter scans the table (optionally narrowed to index candidate
// positions, ascending) in blocks, filtering each block through the
// compiled kernels. Full scans over a disk table walk the sealed prefix
// block-aligned (the sealed row count is always a multiple of
// vecBlockSize), consulting each block's zone map before decode when
// pruning is enabled.
type vecScanIter struct {
	view    rowsView
	idx     []int // nil: scan every row
	vf      vecFilter
	pruneOn bool // zone-map skipping (full scans over sealed blocks only)

	cursor int
	sel    []int
	selPos int
	buf    [vecBlockSize]int
}

func (s *vecScanIter) next() (Row, error) {
	for {
		if s.selPos < len(s.sel) {
			r := s.view.row(s.sel[s.selPos])
			if s.view.err != nil {
				return nil, s.view.err
			}
			s.selPos++
			return r, nil
		}
		var n int
		if s.idx != nil {
			n = len(s.idx) - s.cursor
			if n == 0 {
				return nil, nil
			}
			if n > vecBlockSize {
				n = vecBlockSize
			}
			copy(s.buf[:n], s.idx[s.cursor:s.cursor+n])
		} else {
			total := s.view.total()
			for {
				if s.cursor < s.view.sealed {
					// Sealed prefix: the cursor is block-aligned here, so one
					// refill is exactly one block — skippable via its zone map.
					if s.pruneOn && pruneBlock(s.view.blocks[s.cursor>>vecBlockShift].zm, s.vf.kernels) {
						s.view.eng.blocksSkipped.Add(1)
						s.cursor += vecBlockSize
						continue
					}
					if s.view.eng != nil {
						s.view.eng.blocksScanned.Add(1)
					}
					n = vecBlockSize
				} else {
					n = total - s.cursor
					if n > vecBlockSize {
						n = vecBlockSize
					}
				}
				break
			}
			if n == 0 {
				return nil, nil
			}
			for i := 0; i < n; i++ {
				s.buf[i] = s.cursor + i
			}
		}
		s.cursor += n
		sel, err := s.vf.filter(s.buf[:n])
		if err != nil {
			return nil, err
		}
		if s.view.err != nil {
			return nil, s.view.err
		}
		s.sel, s.selPos = sel, 0
	}
}

// orderedWalkIter emits base rows in ordered-index key order — the ORDER
// BY pushdown path — applying the compiled filters blockwise. Ascending
// order is NULL rows first (NULL sorts lowest under Compare) then keys;
// descending walks runs of Compare-equal keys from the top, ascending row
// position within each run — exactly the order the naive executor's
// stable descending sort produces — then NULL rows last.
type orderedWalkIter struct {
	view rowsView
	ix   *orderedIndex
	desc bool
	vf   vecFilter

	nullCur        int // cursor into ix.nulls
	keyCur         int // asc: cursor into ix.pos
	hi             int // desc: top boundary of unconsumed keys
	runCur, runEnd int // desc: current equal-key run [runCur, runEnd)
	sel            []int
	selPos         int
	buf            [vecBlockSize]int
}

func (s *orderedWalkIter) next() (Row, error) {
	for {
		if s.selPos < len(s.sel) {
			r := s.view.row(s.sel[s.selPos])
			if s.view.err != nil {
				return nil, s.view.err
			}
			s.selPos++
			return r, nil
		}
		var n int
		if s.desc {
			n = s.fillDesc()
		} else {
			n = s.fillAsc()
		}
		if n == 0 {
			return nil, nil
		}
		sel, err := s.vf.filter(s.buf[:n])
		if err != nil {
			return nil, err
		}
		if s.view.err != nil {
			return nil, s.view.err
		}
		s.sel, s.selPos = sel, 0
	}
}

func (s *orderedWalkIter) fillAsc() int {
	n := 0
	for n < vecBlockSize && s.nullCur < len(s.ix.nulls) {
		s.buf[n] = s.ix.nulls[s.nullCur]
		s.nullCur++
		n++
	}
	for n < vecBlockSize && s.keyCur < len(s.ix.pos) {
		s.buf[n] = s.ix.pos[s.keyCur]
		s.keyCur++
		n++
	}
	return n
}

func (s *orderedWalkIter) fillDesc() int {
	n := 0
	for n < vecBlockSize {
		if s.runCur < s.runEnd {
			s.buf[n] = s.ix.pos[s.runCur]
			s.runCur++
			n++
			continue
		}
		if s.hi > 0 {
			j := s.hi
			i := j - 1
			for i > 0 && Compare(s.ix.keys[i-1], s.ix.keys[j-1]) == 0 {
				i--
			}
			s.runCur, s.runEnd = i, j
			s.hi = i
			continue
		}
		if s.nullCur < len(s.ix.nulls) {
			s.buf[n] = s.ix.nulls[s.nullCur]
			s.nullCur++
			n++
			continue
		}
		break
	}
	return n
}
