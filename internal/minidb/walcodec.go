package minidb

import (
	"math"
	"sort"
)

// WAL record payload codec. Every record starts with a one-byte kind tag;
// the segment package frames and checksums the payload, so this layer is
// pure value encoding. All integers are little-endian; strings and rows
// are length-prefixed. Record kinds:
//
//	'T' create table   name, columns
//	'D' drop table     name
//	'X' create index   table, column, ordered flag
//	'I' insert batch   table, rows appended to the tail
//	'R' rewrite        table, full replacement row set (DELETE/UPDATE)
//	'S' seal           table, segment file id, rows moved tail -> blocks
//	'M' merge          table, segment file id, block count re-pointed
//	'C' checkpoint     full schema + segment refs (first record of a log)
//
// A checkpoint log is 'C' followed by one 'I' per table tail, so replay
// of a checkpointed log reuses the ordinary insert path.
const (
	recCreateTable = 'T'
	recDropTable   = 'D'
	recCreateIndex = 'X'
	recInsert      = 'I'
	recRewrite     = 'R'
	recSeal        = 'S'
	recMerge       = 'M'
	recCheckpoint  = 'C'
)

// wbuf is an append-only record encoder.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte) { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *wbuf) u64(v uint64) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// val encodes one Value: kind byte, then the kind's payload.
func (w *wbuf) val(v Value) {
	w.u8(byte(v.Kind))
	switch v.Kind {
	case KindInt:
		w.u64(uint64(v.Int))
	case KindFloat:
		w.u64(math.Float64bits(v.Float))
	case KindText:
		w.str(v.Text)
	}
}

func (w *wbuf) row(r Row) {
	w.u32(uint32(len(r)))
	for _, v := range r {
		w.val(v)
	}
}

// rbuf is the matching decoder. The first decode failure latches err and
// turns every subsequent read into a zero value, so decoders can run
// straight-line and check err once.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = errf("exec", "wal: truncated record")
	}
}

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *rbuf) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) val() Value {
	k := Kind(r.u8())
	switch k {
	case KindNull:
		return Null()
	case KindInt:
		return Int(int64(r.u64()))
	case KindFloat:
		return Float(math.Float64frombits(r.u64()))
	case KindText:
		return Text(r.str())
	}
	r.fail()
	return Null()
}

func (r *rbuf) rowVals() Row {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b)-r.off {
		r.fail()
		return nil
	}
	row := make(Row, n)
	for i := range row {
		row[i] = r.val()
	}
	return row
}

// Record encoders. Row-bearing records carry the column count implicitly
// per row; replay validates against the table's schema.

func encCreateTable(name string, cols []Column) []byte {
	w := &wbuf{b: make([]byte, 0, 16+16*len(cols))}
	w.u8(recCreateTable)
	w.str(name)
	w.u32(uint32(len(cols)))
	for _, c := range cols {
		w.str(c.Name)
		w.u8(byte(c.Type))
	}
	return w.b
}

func encDropTable(name string) []byte {
	w := &wbuf{b: make([]byte, 0, 8+len(name))}
	w.u8(recDropTable)
	w.str(name)
	return w.b
}

func encCreateIndex(table, column string, ordered bool) []byte {
	w := &wbuf{b: make([]byte, 0, 16+len(table)+len(column))}
	w.u8(recCreateIndex)
	w.str(table)
	w.str(column)
	if ordered {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.b
}

func encRows(kind byte, table string, rows []Row) []byte {
	w := &wbuf{b: make([]byte, 0, 32+len(table)+24*len(rows))}
	w.u8(kind)
	w.str(table)
	w.u32(uint32(len(rows)))
	for _, r := range rows {
		w.row(r)
	}
	return w.b
}

func encInsert(table string, rows []Row) []byte  { return encRows(recInsert, table, rows) }
func encRewrite(table string, rows []Row) []byte { return encRows(recRewrite, table, rows) }

func encSeal(table string, fileID uint64, k int) []byte {
	w := &wbuf{b: make([]byte, 0, 24+len(table))}
	w.u8(recSeal)
	w.str(table)
	w.u64(fileID)
	w.u32(uint32(k))
	return w.b
}

func encMerge(table string, fileID uint64, nblocks int) []byte {
	w := &wbuf{b: make([]byte, 0, 24+len(table))}
	w.u8(recMerge)
	w.str(table)
	w.u64(fileID)
	w.u32(uint32(nblocks))
	return w.b
}

// encCheckpoint snapshots the full schema, index declarations, and
// per-table segment references. The caller must hold the database write
// lock. Table tails are not included — the checkpoint writer follows the
// 'C' record with one 'I' record per non-empty tail.
func encCheckpoint(db *Database) []byte {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	w := &wbuf{b: make([]byte, 0, 256)}
	w.u8(recCheckpoint)
	w.u32(uint32(len(names)))
	for _, name := range names {
		t := db.tables[name]
		w.str(name)
		w.u32(uint32(len(t.Columns)))
		for _, c := range t.Columns {
			w.str(c.Name)
			w.u8(byte(c.Type))
		}
		hash := make([]string, 0, len(t.indexes))
		for c := range t.indexes {
			hash = append(hash, c)
		}
		sort.Strings(hash)
		w.u32(uint32(len(hash)))
		for _, c := range hash {
			w.str(c)
		}
		ord := make([]string, 0, len(t.ordered))
		for c := range t.ordered {
			ord = append(ord, c)
		}
		sort.Strings(ord)
		w.u32(uint32(len(ord)))
		for _, c := range ord {
			w.str(c)
		}
		w.u32(uint32(t.sealedRows))
		w.u32(uint32(len(t.blocks)))
		for i := range t.blocks {
			w.u64(t.blocks[i].fileID)
			w.u32(uint32(t.blocks[i].idx))
		}
	}
	return w.b
}
