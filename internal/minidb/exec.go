package minidb

import (
	"fmt"
	"sort"
	"strings"
)

// ResultSet is the outcome of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Strings renders every cell through Value.String, the shape mapping-layer
// wrappers consume.
func (rs *ResultSet) Strings() [][]string {
	out := make([][]string, len(rs.Rows))
	for i, row := range rs.Rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = v.String()
		}
		out[i] = s
	}
	return out
}

// Column returns the values of the named output column.
func (rs *ResultSet) Column(name string) ([]Value, error) {
	for i, c := range rs.Columns {
		if c == name {
			out := make([]Value, len(rs.Rows))
			for j, row := range rs.Rows {
				out[j] = row[i]
			}
			return out, nil
		}
	}
	return nil, errf("exec", "no output column %q", name)
}

// qcol is one column of the row stream, qualified by its table alias.
type qcol struct {
	qualifier string
	name      string
}

// env resolves column references against one concrete row, and binds
// positional parameters for prepared statements.
type env struct {
	cols []qcol
	row  Row
	args []Value
}

func (e *env) resolve(ref *ColumnRef) (int, error) {
	found := -1
	for i, c := range e.cols {
		if c.name != ref.Name {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.qualifier, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, errf("exec", "ambiguous column %q", ref.Name)
		}
		found = i
	}
	if found < 0 {
		if ref.Table != "" {
			return 0, errf("exec", "unknown column %s.%s", ref.Table, ref.Name)
		}
		return 0, errf("exec", "unknown column %q", ref.Name)
	}
	return found, nil
}

// eval evaluates a non-aggregate expression against the environment.
func eval(e Expr, env *env) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if env == nil || x.Pos >= len(env.args) {
			return Value{}, errf("exec", "parameter ?%d is not bound", x.Pos+1)
		}
		return env.args[x.Pos], nil
	case *ColumnRef:
		if env == nil {
			return Value{}, errf("exec", "column reference %q outside a row context", x.Name)
		}
		i, err := env.resolve(x)
		if err != nil {
			return Value{}, err
		}
		return env.row[i], nil
	case *Unary:
		v, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "-" {
			switch v.Kind {
			case KindInt:
				v.Int = -v.Int
				return v, nil
			case KindFloat:
				v.Float = -v.Float
				return v, nil
			case KindNull:
				return v, nil
			}
			return Value{}, errf("exec", "unary - requires a numeric value, got %s", v.Kind)
		}
		return Bool(!v.Truthy()), nil
	case *IsNull:
		v, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(v.IsNull() != x.Negate), nil
	case *InList:
		v, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		match := false
		for _, item := range x.List {
			iv, err := eval(item, env)
			if err != nil {
				return Value{}, err
			}
			if Equal(v, iv) {
				match = true
				break
			}
		}
		return Bool(match != x.Negate), nil
	case *Between:
		v, err := eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		lo, err := eval(x.Lo, env)
		if err != nil {
			return Value{}, err
		}
		hi, err := eval(x.Hi, env)
		if err != nil {
			return Value{}, err
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		return Bool(in != x.Negate), nil
	case *Binary:
		return evalBinary(x, env)
	case *Aggregate:
		return Value{}, errf("exec", "aggregate %s in row context", x.Func)
	}
	return Value{}, errf("exec", "unknown expression %T", e)
}

func evalBinary(x *Binary, env *env) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := eval(x.L, env)
		if err != nil {
			return Value{}, err
		}
		if !l.Truthy() {
			return Bool(false), nil
		}
		r, err := eval(x.R, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.Truthy()), nil
	case "OR":
		l, err := eval(x.L, env)
		if err != nil {
			return Value{}, err
		}
		if l.Truthy() {
			return Bool(true), nil
		}
		r, err := eval(x.R, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.Truthy()), nil
	}
	l, err := eval(x.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.R, env)
	if err != nil {
		return Value{}, err
	}
	// SQL three-valued logic simplified: comparisons with NULL are false.
	if l.IsNull() || r.IsNull() {
		return Bool(false), nil
	}
	switch x.Op {
	case "=":
		return Bool(Equal(l, r)), nil
	case "!=":
		return Bool(!Equal(l, r)), nil
	case "<":
		return Bool(Compare(l, r) < 0), nil
	case "<=":
		return Bool(Compare(l, r) <= 0), nil
	case ">":
		return Bool(Compare(l, r) > 0), nil
	case ">=":
		return Bool(Compare(l, r) >= 0), nil
	case "LIKE":
		return Bool(likeMatch(r.String(), l.String())), nil
	}
	return Value{}, errf("exec", "unknown operator %q", x.Op)
}

// hasAggregate reports whether any select item contains an aggregate call.
func hasAggregate(items []SelectItem) bool {
	for _, it := range items {
		if exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *Aggregate:
		return true
	case *Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *Unary:
		return exprHasAggregate(x.X)
	case *IsNull:
		return exprHasAggregate(x.X)
	case *Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *InList:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, it := range x.List {
			if exprHasAggregate(it) {
				return true
			}
		}
	}
	return false
}

// runSelectNaive executes a SELECT against the (already locked) database
// with the reference full-materialization nested-loop strategy. The
// planned pipeline in plan.go is the production path; this executor is
// retained as the semantics oracle the differential tests compare
// against (see Database.QueryNaive).
func (db *Database) runSelectNaive(st *SelectStmt, args []Value) (*ResultSet, error) {
	base, err := db.table(st.From)
	if err != nil {
		return nil, err
	}
	baseQual := st.Alias
	if baseQual == "" {
		baseQual = st.From
	}
	cols := make([]qcol, 0, len(base.Columns))
	for _, c := range base.Columns {
		cols = append(cols, qcol{qualifier: baseQual, name: c.Name})
	}

	// Materialize the row stream (scan + optional nested-loop join + filter).
	var rows []Row
	e := &env{cols: cols, args: args}
	bv := base.view()
	if st.Join == nil {
		total := bv.total()
		for i := 0; i < total; i++ {
			r := bv.row(i)
			e.row = r
			ok, err := passWhere(st.Where, e)
			if err != nil {
				return nil, err
			}
			if ok {
				rows = append(rows, r)
			}
		}
		if bv.err != nil {
			return nil, bv.err
		}
	} else {
		right, err := db.table(st.Join.Table)
		if err != nil {
			return nil, err
		}
		rightQual := st.Join.Alias
		if rightQual == "" {
			rightQual = st.Join.Table
		}
		for _, c := range right.Columns {
			cols = append(cols, qcol{qualifier: rightQual, name: c.Name})
		}
		e.cols = cols
		combined := make(Row, len(cols))
		rv := right.view()
		nLeft, nRight := bv.total(), rv.total()
		for li := 0; li < nLeft; li++ {
			lr := bv.row(li)
			copy(combined, lr)
			for ri := 0; ri < nRight; ri++ {
				rr := rv.row(ri)
				copy(combined[len(lr):], rr)
				e.row = combined
				ok, err := passWhere(st.Join.On, e)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				ok, err = passWhere(st.Where, e)
				if err != nil {
					return nil, err
				}
				if ok {
					rows = append(rows, combined.clone())
				}
			}
		}
		if bv.err != nil {
			return nil, bv.err
		}
		if rv.err != nil {
			return nil, rv.err
		}
	}

	if !st.Star && hasAggregate(st.Items) {
		return runAggregates(st, e.cols, rows)
	}

	// Projection with ORDER BY keys computed from the input row.
	type projRow struct {
		out  []Value
		keys []Value
	}
	var projected []projRow
	outCols := outputColumns(st, e.cols)
	for _, r := range rows {
		e.row = r
		var out []Value
		if st.Star {
			out = r.clone()
		} else {
			out = make([]Value, len(st.Items))
			for i, it := range st.Items {
				v, err := eval(it.Expr, e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
		}
		keys := make([]Value, len(st.OrderBy))
		for i, k := range st.OrderBy {
			v, err := eval(k.Expr, e)
			if err != nil {
				// Allow ORDER BY to reference an output alias.
				v, err = aliasValue(k.Expr, st.Items, out)
				if err != nil {
					return nil, err
				}
			}
			keys[i] = v
		}
		projected = append(projected, projRow{out: out, keys: keys})
	}

	if st.Distinct {
		seen := make(map[string]bool, len(projected))
		kept := projected[:0]
		for _, pr := range projected {
			k := rowKey(pr.out)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, pr)
		}
		projected = kept
	}

	if len(st.OrderBy) > 0 {
		sort.SliceStable(projected, func(i, j int) bool {
			for k, key := range st.OrderBy {
				c := Compare(projected[i].keys[k], projected[j].keys[k])
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	if st.Limit >= 0 && len(projected) > st.Limit {
		projected = projected[:st.Limit]
	}

	rs := &ResultSet{Columns: outCols, Rows: make([][]Value, len(projected))}
	for i, pr := range projected {
		rs.Rows[i] = pr.out
	}
	return rs, nil
}

// aliasValue resolves an ORDER BY expression against the output row by
// alias or projected column name.
func aliasValue(e Expr, items []SelectItem, out []Value) (Value, error) {
	ref, ok := e.(*ColumnRef)
	if !ok || ref.Table != "" {
		return Value{}, errf("exec", "cannot evaluate ORDER BY expression")
	}
	for i, it := range items {
		if it.Alias == ref.Name {
			return out[i], nil
		}
	}
	return Value{}, errf("exec", "unknown ORDER BY column %q", ref.Name)
}

func passWhere(where Expr, e *env) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := eval(where, e)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// outputColumns derives the result column names.
func outputColumns(st *SelectStmt, cols []qcol) []string {
	if st.Star {
		// Qualify duplicated names so joined outputs stay unambiguous.
		count := map[string]int{}
		for _, c := range cols {
			count[c.name]++
		}
		out := make([]string, len(cols))
		for i, c := range cols {
			if count[c.name] > 1 {
				out[i] = c.qualifier + "." + c.name
			} else {
				out[i] = c.name
			}
		}
		return out
	}
	out := make([]string, len(st.Items))
	for i, it := range st.Items {
		switch {
		case it.Alias != "":
			out[i] = it.Alias
		default:
			out[i] = exprName(it.Expr, i)
		}
	}
	return out
}

func exprName(e Expr, i int) string {
	switch x := e.(type) {
	case *ColumnRef:
		return x.Name
	case *Aggregate:
		if x.Star {
			return strings.ToLower(x.Func)
		}
		return strings.ToLower(x.Func)
	default:
		return fmt.Sprintf("column%d", i+1)
	}
}

func rowKey(row []Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteByte(byte(v.Kind))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// runAggregates evaluates an all-aggregate select list over the row stream.
func runAggregates(st *SelectStmt, cols []qcol, rows []Row) (*ResultSet, error) {
	out := make([]Value, len(st.Items))
	names := outputColumns(st, cols)
	e := &env{cols: cols}
	for i, it := range st.Items {
		agg, ok := it.Expr.(*Aggregate)
		if !ok {
			return nil, errf("exec", "select list mixes aggregates and plain columns (GROUP BY is not supported)")
		}
		v, err := computeAggregate(agg, e, rows)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return &ResultSet{Columns: names, Rows: [][]Value{out}}, nil
}

func computeAggregate(agg *Aggregate, e *env, rows []Row) (Value, error) {
	if agg.Star {
		return Int(int64(len(rows))), nil
	}
	var vals []Value
	for _, r := range rows {
		e.row = r
		v, err := eval(agg.Arg, e)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		vals = append(vals, v)
	}
	if agg.Distinct {
		seen := make(map[string]bool, len(vals))
		kept := vals[:0]
		for _, v := range vals {
			k := string(byte(v.Kind)) + v.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, v)
		}
		vals = kept
	}
	switch agg.Func {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if agg.Func == "MIN" && c < 0 || agg.Func == "MAX" && c > 0 {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return Value{}, errf("exec", "%s over non-numeric value %q", agg.Func, v.String())
			}
			if v.Kind != KindInt {
				allInt = false
			}
			sum += f
		}
		if agg.Func == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	}
	return Value{}, errf("exec", "unknown aggregate %q", agg.Func)
}
