// Package minidb implements a small in-memory relational database engine
// with a SQL subset, standing in for the PostgreSQL 7.4.1 server used by
// the paper's Data Layer.
//
// The engine supports CREATE TABLE / DROP TABLE, INSERT, DELETE, and SELECT
// with projection, DISTINCT, WHERE expressions (comparisons, LIKE, AND, OR,
// NOT, parentheses), inner JOIN ... ON, ORDER BY, LIMIT, and the aggregates
// COUNT / COUNT(DISTINCT) / SUM / AVG / MIN / MAX. That is the full query
// surface the PPerfGrid mapping-layer wrappers require, and every wrapper
// query is submitted as SQL text so the parse/plan/scan cost the paper's
// Table 4 attributes to the Mapping Layer is actually paid per query.
//
// The database is safe for concurrent use: SELECTs take a read lock, DDL
// and DML take a write lock.
package minidb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	}
	return "UNKNOWN"
}

// Value is one cell value.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Text  string
}

// Constructors.
func Null() Value           { return Value{Kind: KindNull} }
func Int(v int64) Value     { return Value{Kind: KindInt, Int: v} }
func Float(v float64) Value { return Value{Kind: KindFloat, Float: v} }
func Text(s string) Value   { return Value{Kind: KindText, Text: s} }
func Bool(b bool) Value { // booleans are stored as 0/1 integers
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy reports whether the value counts as true in a WHERE clause:
// nonzero numbers and nonempty text are true, NULL is false.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindText:
		return v.Text != ""
	}
	return false
}

// AsFloat returns the numeric value of v, converting ints and parsing
// numeric text. The second result reports convertibility.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Text), 64)
		return f, err == nil
	}
	return 0, false
}

// String renders the value for result display. NULL renders as "NULL".
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindText:
		return v.Text
	}
	return "NULL"
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically (ints and floats intermix); text compares
// lexicographically; numbers sort before text when kinds are incomparable.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	aNum := a.Kind == KindInt || a.Kind == KindFloat
	bNum := b.Kind == KindInt || b.Kind == KindFloat
	switch {
	case aNum && bNum:
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			}
			return 0
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case !aNum && !bNum:
		return strings.Compare(a.Text, b.Text)
	case aNum:
		return -1
	default:
		return 1
	}
}

// Equal reports whether two values compare equal under Compare. Equality
// between a numeric text and a number succeeds when the text parses, so
// `WHERE runid = '5'` matches integer columns the way the paper's SQL
// examples expect.
func Equal(a, b Value) bool {
	if a.Kind == KindText != (b.Kind == KindText) {
		// Mixed text/number: try numeric comparison.
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if aok && bok {
			return af == bf
		}
		return false
	}
	return Compare(a, b) == 0
}

// ColumnType is a declared column type.
type ColumnType uint8

// Column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeText
)

func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	default:
		return "TEXT"
	}
}

// Coerce converts v to the column type where possible; incompatible values
// are stored as-is (the engine is dynamically typed like SQLite).
func (t ColumnType) Coerce(v Value) Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case TypeInt:
		switch v.Kind {
		case KindInt:
			return v
		case KindFloat:
			return Int(int64(v.Float))
		case KindText:
			if n, err := strconv.ParseInt(strings.TrimSpace(v.Text), 10, 64); err == nil {
				return Int(n)
			}
		}
	case TypeFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f)
		}
	case TypeText:
		return Text(v.String())
	}
	return v
}

// Column is one column definition.
type Column struct {
	Name string
	Type ColumnType
}

// Row is one table row.
type Row []Value

// clone returns a copy of the row.
func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char)
// wildcards, case-sensitive like PostgreSQL.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

// Error is the error type returned by the engine, carrying the failing SQL
// fragment where available.
type Error struct {
	Op  string // "parse", "plan", "exec"
	Msg string
}

func (e *Error) Error() string { return "minidb: " + e.Op + ": " + e.Msg }

func errf(op, format string, args ...any) error {
	return &Error{Op: op, Msg: fmt.Sprintf(format, args...)}
}
