package minidb

import "sync"

// Stmt is a prepared statement: the SQL is lexed and parsed once, and
// each execution binds `?` parameters positionally. SELECT plans are
// additionally cached across executions and invalidated when the schema
// changes. Statements are safe for concurrent use.
type Stmt struct {
	db      *Database
	sql     string
	st      Statement
	nParams int

	planMu  sync.Mutex
	plan    *selectPlan
	planGen uint64
}

// stmtCacheCap bounds the per-database prepared-statement cache. When the
// cache fills (distinct SQL texts, not executions), it is dropped
// wholesale — an epoch eviction that keeps the common case (a bounded set
// of recurring mapping-layer templates) allocation-free.
const stmtCacheCap = 1024

// Prepare parses a statement once and caches it by SQL text, so repeated
// preparations of the same template cost one map lookup instead of a
// lex/parse. The returned Stmt binds `?` parameters at execution time.
func (db *Database) Prepare(sql string) (*Stmt, error) {
	db.stmtMu.Lock()
	if s, ok := db.stmts[sql]; ok {
		db.stmtMu.Unlock()
		return s, nil
	}
	db.stmtMu.Unlock()

	st, nParams, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, sql: sql, st: st, nParams: nParams}

	db.stmtMu.Lock()
	if len(db.stmts) >= stmtCacheCap {
		db.stmts = make(map[string]*Stmt)
	}
	db.stmts[sql] = s
	db.stmtMu.Unlock()
	return s, nil
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.nParams }

func (s *Stmt) bindCheck(args []Value) error {
	if len(args) != s.nParams {
		return errf("exec", "statement wants %d parameters, got %d", s.nParams, len(args))
	}
	return nil
}

// Query runs a prepared SELECT with the given parameter bindings,
// materializing the full result set.
func (s *Stmt) Query(args ...Value) (*ResultSet, error) {
	rows, err := s.QueryStream(args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	return rows.drain()
}

// QueryStream runs a prepared SELECT and returns a streaming iterator,
// so large scans are consumed row by row instead of materialized. The
// iterator holds the database's read lock until Close — callers must
// Close it (defer rows.Close() immediately) and must not issue write
// statements from the same goroutine while iterating.
func (s *Stmt) QueryStream(args ...Value) (*Rows, error) {
	sel, ok := s.st.(*SelectStmt)
	if !ok {
		return nil, errf("exec", "use Exec for non-SELECT statements")
	}
	if err := s.bindCheck(args); err != nil {
		return nil, err
	}
	s.db.mu.RLock()
	p, err := s.cachedPlan(sel)
	if err != nil {
		s.db.mu.RUnlock()
		return nil, err
	}
	rows, err := p.rows(args)
	if err != nil {
		s.db.mu.RUnlock()
		return nil, err
	}
	if rows.materialized {
		// ORDER BY and aggregate results are already computed; no table
		// state is referenced after this point.
		s.db.mu.RUnlock()
	} else {
		rows.unlock = s.db.mu.RUnlock
	}
	return rows, nil
}

// cachedPlan returns the statement's plan, replanning when the schema
// generation moved (CREATE/DROP TABLE). The caller must hold at least
// the database's read lock.
func (s *Stmt) cachedPlan(sel *SelectStmt) (*selectPlan, error) {
	gen := s.db.schemaGen
	s.planMu.Lock()
	if s.plan != nil && s.planGen == gen {
		p := s.plan
		s.planMu.Unlock()
		return p, nil
	}
	// Drop the stale plan now: it pins its tables' rows (a dropped
	// table would otherwise stay reachable if replanning fails).
	s.plan = nil
	s.planMu.Unlock()
	p, err := s.db.planSelect(sel)
	if err != nil {
		return nil, err
	}
	s.planMu.Lock()
	s.plan, s.planGen = p, gen
	s.planMu.Unlock()
	return p, nil
}

// Exec runs a prepared DDL/DML statement with the given parameter
// bindings, returning the number of rows affected.
func (s *Stmt) Exec(args ...Value) (int, error) {
	if _, ok := s.st.(*SelectStmt); ok {
		return 0, errf("exec", "use Query for SELECT statements")
	}
	if err := s.bindCheck(args); err != nil {
		return 0, err
	}
	return s.db.execStatement(s.st, args)
}
