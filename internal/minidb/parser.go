package minidb

import (
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name    string
	Columns []Column
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

// CreateIndexStmt is CREATE [ORDERED] INDEX name ON table (column) — a
// secondary index declaration: a hash index (index.go) by default, or a
// sorted range index (ordered.go) when ORDERED is given.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Column  string
	Ordered bool
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // nil means positional
	Rows    [][]Expr
}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE name SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Value  Expr
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     string
	Alias    string
	Join     *JoinClause
	Where    Expr
	OrderBy  []OrderKey
	Limit    int // -1 means no limit
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// JoinClause is INNER JOIN table [alias] ON expr.
type JoinClause struct {
	Table string
	Alias string
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is a parsed expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct{ Table, Name string }

// Param is one positional `?` placeholder of a prepared statement, bound
// at execution time by Stmt.Query/Exec. Pos is zero-based, in order of
// appearance.
type Param struct{ Pos int }

// Binary is a binary operation: comparison, LIKE, AND, OR.
type Binary struct {
	Op   string // "=", "!=", "<", "<=", ">", ">=", "LIKE", "AND", "OR"
	L, R Expr
}

// Unary is NOT x, or numeric negation -x over a deferred operand (a `?`
// parameter; signs on numeric literals fold at parse time instead).
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// InList is x [NOT] IN (a, b, ...).
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// Aggregate is COUNT/SUM/AVG/MIN/MAX.
type Aggregate struct {
	Func     string // upper-case
	Distinct bool
	Star     bool // COUNT(*)
	Arg      Expr
}

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*Param) expr()     {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*IsNull) expr()    {}
func (*InList) expr()    {}
func (*Between) expr()   {}
func (*Aggregate) expr() {}

type parser struct {
	toks    []token
	pos     int
	nParams int
}

// ParseStatement parses one SQL statement.
func ParseStatement(sql string) (Statement, error) {
	st, _, err := parseSQL(sql)
	return st, err
}

// parseSQL parses one statement and reports how many `?` parameters it
// declares.
func parseSQL(sql string) (Statement, int, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	// Optional trailing semicolon.
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, 0, errf("parse", "unexpected trailing input %q", p.cur().text)
	}
	return st, p.nParams, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf("parse", "expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return errf("parse", "expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	// Keywords are usable as identifiers where unambiguous (e.g. a column
	// named "count"), mirroring lenient SQL dialects.
	if t.kind == tokIdent || t.kind == tokKeyword {
		p.pos++
		return t.text, nil
	}
	return "", errf("parse", "expected identifier, got %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.acceptKeyword("SELECT"):
		return p.parseSelect()
	case p.acceptKeyword("CREATE"):
		return p.parseCreate()
	case p.acceptKeyword("DROP"):
		return p.parseDrop()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	case p.acceptKeyword("DELETE"):
		return p.parseDelete()
	case p.acceptKeyword("UPDATE"):
		return p.parseUpdate()
	}
	return nil, errf("parse", "expected statement, got %q", p.cur().text)
}

func (p *parser) parseCreate() (Statement, error) {
	if p.acceptKeyword("INDEX") {
		return p.parseCreateIndex(false)
	}
	// ORDERED is not reserved (columns may be named "ordered"), so it is
	// matched as an identifier that must be followed by INDEX.
	if t := p.cur(); t.kind == tokIdent && strings.EqualFold(t.text, "ORDERED") {
		p.pos++
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ctype, err := p.parseColumnType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: cname, Type: ctype})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Columns: cols}, nil
}

func (p *parser) parseColumnType() (ColumnType, error) {
	t := p.cur()
	if t.kind != tokKeyword && t.kind != tokIdent {
		return 0, errf("parse", "expected column type, got %q", t.text)
	}
	p.pos++
	switch strings.ToUpper(t.text) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		p.acceptKeyword("PRECISION") // DOUBLE PRECISION
		return TypeFloat, nil
	case "TEXT":
		return TypeText, nil
	case "VARCHAR", "CHAR":
		// Optional (n).
		if p.acceptSymbol("(") {
			if p.cur().kind != tokNumber {
				return 0, errf("parse", "expected length in %s(n)", t.text)
			}
			p.pos++
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
		return TypeText, nil
	}
	return 0, errf("parse", "unknown column type %q", t.text)
}

// parseCreateIndex parses CREATE [ORDERED] INDEX name ON table (column);
// the leading CREATE [ORDERED] INDEX tokens are already consumed.
func (p *parser) parseCreateIndex(ordered bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	column, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: column, Ordered: ordered}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.acceptSymbol("(") {
		for {
			cname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, cname)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, Value: val})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = where
	}
	return st, nil
}

func (p *parser) parseSelect() (Statement, error) {
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")

	if p.acceptSymbol("*") {
		st.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.cur().kind == tokIdent {
				item.Alias = p.next().text
			}
			st.Items = append(st.Items, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var err error
	st.From, st.Alias, err = p.parseTableRef()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("INNER") {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		if st.Join, err = p.parseJoin(); err != nil {
			return nil, err
		}
	} else if p.acceptKeyword("JOIN") {
		if st.Join, err = p.parseJoin(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				k.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, k)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errf("parse", "expected number after LIMIT, got %q", t.text)
		}
		p.pos++
		n, convErr := strconv.Atoi(t.text)
		if convErr != nil || n < 0 {
			return nil, errf("parse", "bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) parseTableRef() (name, alias string, err error) {
	name, err = p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if p.acceptKeyword("AS") {
		alias, err = p.expectIdent()
		return name, alias, err
	}
	if p.cur().kind == tokIdent {
		alias = p.next().text
	}
	return name, alias, nil
}

func (p *parser) parseJoin() (*JoinClause, error) {
	name, alias, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &JoinClause{Table: name, Alias: alias, On: on}, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := primary [ (= | != | < | <= | > | >= | LIKE | NOT LIKE |
//	                      IS [NOT] NULL | [NOT] IN (...) | [NOT] BETWEEN x AND y ) primary ]
//	primary := literal | aggregate | columnref | ( expr )
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	// [NOT] IN / [NOT] BETWEEN / NOT LIKE
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" {
		save := p.pos
		p.pos++
		switch {
		case p.acceptKeyword("IN"):
			in, err := p.parseInTail(l)
			if err != nil {
				return nil, err
			}
			in.Negate = true
			return in, nil
		case p.acceptKeyword("BETWEEN"):
			bt, err := p.parseBetweenTail(l)
			if err != nil {
				return nil, err
			}
			bt.Negate = true
			return bt, nil
		case p.acceptKeyword("LIKE"):
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: "NOT", X: &Binary{Op: "LIKE", L: l, R: r}}, nil
		}
		p.pos = save
		return l, nil
	}
	if p.acceptKeyword("IN") {
		return p.parseInTail(l)
	}
	if p.acceptKeyword("BETWEEN") {
		return p.parseBetweenTail(l)
	}
	if p.acceptKeyword("LIKE") {
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "LIKE", L: l, R: r}, nil
	}
	t := p.cur()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr) (*InList, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	in := &InList{X: l}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseBetweenTail(l Expr) (*Between, error) {
	lo, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return &Between{X: l, Lo: lo, Hi: hi}, nil
}

var aggregateFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	// Unary sign on numeric literals (folded here) or on `?` parameters
	// (deferred to bind time, so prepared INSERTs can write -?).
	if t.kind == tokSymbol && (t.text == "-" || t.text == "+") {
		neg := t.text == "-"
		p.pos++
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if _, isParam := inner.(*Param); isParam {
			if neg {
				return &Unary{Op: "-", X: inner}, nil
			}
			return inner, nil
		}
		lit, ok := inner.(*Literal)
		if !ok || (lit.Val.Kind != KindInt && lit.Val.Kind != KindFloat) {
			return nil, errf("parse", "unary %s requires a numeric literal or parameter", t.text)
		}
		if neg {
			v := lit.Val
			if v.Kind == KindInt {
				v.Int = -v.Int
			} else {
				v.Float = -v.Float
			}
			return &Literal{Val: v}, nil
		}
		return lit, nil
	}
	if t.kind == tokSymbol && t.text == "?" {
		p.pos++
		prm := &Param{Pos: p.nParams}
		p.nParams++
		return prm, nil
	}
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errf("parse", "bad number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf("parse", "bad number %q", t.text)
		}
		return &Literal{Val: Int(n)}, nil
	case tokString:
		p.pos++
		return &Literal{Val: Text(t.text)}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.pos++
			return &Literal{Val: Null()}, nil
		}
		if aggregateFuncs[t.text] {
			// Only an aggregate if followed by '('; otherwise treat the
			// keyword as a column name (e.g. a column named "count").
			if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
				return p.parseAggregate()
			}
		}
		return p.parseColumnRef()
	case tokIdent:
		return p.parseColumnRef()
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errf("parse", "unexpected token %q in expression", t.text)
}

func (p *parser) parseAggregate() (Expr, error) {
	fn := p.next().text // keyword, upper-cased
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	agg := &Aggregate{Func: fn}
	if p.acceptSymbol("*") {
		if fn != "COUNT" {
			return nil, errf("parse", "%s(*) is not valid", fn)
		}
		agg.Star = true
	} else {
		agg.Distinct = p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *parser) parseColumnRef() (Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}
