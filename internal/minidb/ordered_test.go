// Tests for the ordered secondary index and the planner paths built on
// it: range/BETWEEN probes, ORDER BY pushdown (ordered walk and top-k),
// LIMIT early stop, and the EXPLAIN introspection that makes index usage
// assertable. The differential sections pin every planned shortcut
// byte-equivalent to the naive executor over data with NULLs, duplicate
// keys, and mixed numeric/text types — the cases where ordered-index
// semantics (Compare) and equality semantics (Equal) diverge.
package minidb_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pperfgrid/internal/minidb"
)

// orderedObsDB builds a small table deliberately hostile to index
// shortcuts: duplicate keys (runs for the descending walk), NULLs in
// every indexed column, a text column holding numeric-looking strings
// (Equal folds '5' == 5, Compare does not), and both hash and ordered
// indexes declared through SQL.
func orderedObsDB(t *testing.T) *minidb.Database {
	t.Helper()
	db := minidb.NewDatabase()
	db.MustExec("CREATE TABLE obs (k INT, tag TEXT, v FLOAT)")
	rows := []string{
		"(4, 'a', 1.5)", "(2, 'b', NULL)", "(NULL, 'c', 3.25)",
		"(7, '5', 2.5)", "(4, 'd', 0.5)", "(2, 'b', 8.0)",
		"(NULL, NULL, 7.75)", "(9, 'e', 4.0)", "(4, 'a', 6.5)",
		"(1, 'f', NULL)", "(7, 'g', 5.25)", "(3, '5', 9.0)",
	}
	for _, r := range rows {
		db.MustExec("INSERT INTO obs VALUES " + r)
	}
	db.MustExec("CREATE ORDERED INDEX obs_k ON obs (k)")
	db.MustExec("CREATE ORDERED INDEX obs_v ON obs (v)")
	db.MustExec("CREATE INDEX obs_tag ON obs (tag)")
	return db
}

func TestCreateOrderedIndexIntrospection(t *testing.T) {
	db := orderedObsDB(t)
	ordered, err := db.OrderedIndexes("obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(ordered) != 2 || ordered[0] != "k" || ordered[1] != "v" {
		t.Fatalf("OrderedIndexes = %v, want [k v]", ordered)
	}
	hash, err := db.Indexes("obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 1 || hash[0] != "tag" {
		t.Fatalf("Indexes = %v, want [tag]", hash)
	}
	// Re-declaring is a no-op, matching the hash-index convention.
	if err := db.CreateOrderedIndex("obs", "k"); err != nil {
		t.Fatalf("re-declaring ordered index: %v", err)
	}
	if err := db.CreateOrderedIndex("obs", "nosuch"); err == nil {
		t.Fatal("ordered index on unknown column did not error")
	}
}

// TestDifferentialOrderedFixed pins the hand-picked adversarial shapes:
// NULL bounds, inverted ranges, NULL IN items, mixed-type comparisons,
// and duplicate-key descending order.
func TestDifferentialOrderedFixed(t *testing.T) {
	db := orderedObsDB(t)
	for _, q := range []string{
		// Plain range probes, both directions, inclusive and strict.
		"SELECT k, tag, v FROM obs WHERE k >= 3",
		"SELECT k, tag, v FROM obs WHERE k > 3",
		"SELECT k, tag, v FROM obs WHERE k <= 4",
		"SELECT k, tag, v FROM obs WHERE k < 4",
		"SELECT k, v FROM obs WHERE k >= 2 AND k < 7",
		// BETWEEN: normal, empty, inverted, and NULL bounds (a NULL lower
		// bound makes the predicate match NULL rows; the index must not
		// be allowed to skip them).
		"SELECT k, v FROM obs WHERE k BETWEEN 2 AND 6",
		"SELECT k, v FROM obs WHERE k BETWEEN 6 AND 2",
		"SELECT k, v FROM obs WHERE k BETWEEN NULL AND 5",
		"SELECT k, v FROM obs WHERE k BETWEEN 2 AND NULL",
		"SELECT k, v FROM obs WHERE k NOT BETWEEN 2 AND 6",
		"SELECT k, v FROM obs WHERE v BETWEEN 1.0 AND 6.5",
		// IN through the hash index, with duplicates and a NULL item
		// (NULL IN-items match NULL rows; the probe must stand down).
		"SELECT k, tag FROM obs WHERE tag IN ('a', 'b')",
		"SELECT k, tag FROM obs WHERE tag IN ('a', 'a', 'b')",
		"SELECT k, tag FROM obs WHERE tag IN ('a', NULL)",
		"SELECT k, tag FROM obs WHERE tag NOT IN ('a', 'b')",
		// Mixed-type equality vs ordering: Equal folds '5' == 5 across
		// text/number, Compare orders numbers before text.
		"SELECT k, tag FROM obs WHERE tag = 5",
		"SELECT k, tag FROM obs WHERE tag IN (5, 'e')",
		"SELECT k, tag FROM obs WHERE k >= '3'",
		// IS NULL / IS NOT NULL through the ordered index's NULL run.
		"SELECT tag, v FROM obs WHERE k IS NULL",
		"SELECT tag, v FROM obs WHERE k IS NOT NULL",
		// ORDER BY pushdown: full walks both directions, NULL placement,
		// duplicate-key runs, LIMIT early stop, and LIMIT 0.
		"SELECT k, tag, v FROM obs ORDER BY k",
		"SELECT k, tag, v FROM obs ORDER BY k DESC",
		"SELECT k, tag, v FROM obs ORDER BY k LIMIT 5",
		"SELECT k, tag, v FROM obs ORDER BY k DESC LIMIT 5",
		"SELECT k, tag, v FROM obs ORDER BY k LIMIT 0",
		"SELECT v, k FROM obs ORDER BY v DESC LIMIT 3",
		// Top-k over a narrowed scan (probe wins, heap orders).
		"SELECT k, v FROM obs WHERE k >= 2 ORDER BY v LIMIT 4",
		"SELECT k, v FROM obs WHERE k BETWEEN 1 AND 7 ORDER BY v DESC LIMIT 4",
		// DISTINCT disqualifies both walk and top-k; must still match.
		"SELECT DISTINCT k FROM obs ORDER BY k",
		"SELECT DISTINCT k FROM obs ORDER BY k DESC LIMIT 3",
		// Residual conjuncts on top of a probe (vectorized re-check).
		"SELECT k, tag, v FROM obs WHERE k >= 2 AND tag != 'b' AND v IS NOT NULL",
		"SELECT k, tag, v FROM obs WHERE k BETWEEN 2 AND 9 AND tag LIKE '%a%'",
	} {
		assertSameResults(t, db, q)
	}
}

// TestDifferentialOrderedRandom fuzzes the planned pipeline against the
// naive executor over the adversarial table, interleaving mutations so
// stale-index rebuilds are exercised mid-stream. Mutations alternate
// between literal SQL and prepared ?-bound inserts — the write path's
// ingestion route — so the incremental hash-index add and ordered-index
// staleness marking in noteInsert are fuzzed alongside the planner.
func TestDifferentialOrderedRandom(t *testing.T) {
	db := orderedObsDB(t)
	rng := rand.New(rand.NewSource(99))
	ins, err := db.Prepare("INSERT INTO obs VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	insNeg, err := db.Prepare("INSERT INTO obs VALUES (-?, ?, -?)")
	if err != nil {
		t.Fatal(err)
	}
	cmp := []string{">=", ">", "<=", "<", "=", "!="}
	orders := []string{"", " ORDER BY k", " ORDER BY k DESC", " ORDER BY v", " ORDER BY v DESC"}
	for i := 0; i < 400; i++ {
		var q string
		switch rng.Intn(5) {
		case 0:
			q = fmt.Sprintf("SELECT k, tag, v FROM obs WHERE k %s %d", cmp[rng.Intn(len(cmp))], rng.Intn(11))
		case 1:
			lo := rng.Intn(10)
			q = fmt.Sprintf("SELECT k, v FROM obs WHERE k BETWEEN %d AND %d", lo, lo+rng.Intn(6)-1)
		case 2:
			q = fmt.Sprintf("SELECT k, v FROM obs WHERE v %s %g", cmp[rng.Intn(len(cmp))], rng.Float64()*10)
		case 3:
			q = fmt.Sprintf("SELECT tag, k FROM obs WHERE tag IN ('%c', '%c')", 'a'+rune(rng.Intn(8)), 'a'+rune(rng.Intn(8)))
		default:
			q = fmt.Sprintf("SELECT k, tag, v FROM obs WHERE k >= %d AND v <= %g", rng.Intn(8), rng.Float64()*10)
		}
		q += orders[rng.Intn(len(orders))]
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" LIMIT %d", rng.Intn(8))
		}
		assertSameResults(t, db, q)

		// Every few queries, mutate: the next probe must rebuild.
		switch {
		case i%23 == 11:
			if i%2 == 0 {
				db.MustExec(fmt.Sprintf("INSERT INTO obs VALUES (%d, '%c', %g)", rng.Intn(12), 'a'+rune(rng.Intn(8)), rng.Float64()*10))
			} else if _, err := ins.Exec(minidb.Int(int64(rng.Intn(12))), minidb.Text(string(rune('a'+rng.Intn(8)))), minidb.Float(rng.Float64()*10)); err != nil {
				t.Fatalf("iter %d: prepared insert: %v", i, err)
			}
		case i%31 == 17:
			db.MustExec(fmt.Sprintf("DELETE FROM obs WHERE k = %d AND v > %g", rng.Intn(12), rng.Float64()*10))
		case i%41 == 29:
			db.MustExec(fmt.Sprintf("UPDATE obs SET v = %g WHERE k = %d", rng.Float64()*10, rng.Intn(12)))
		case i%37 == 19:
			// Negated params land negative keys: below every literal range
			// bound, so ordered walks must still place them first.
			if _, err := insNeg.Exec(minidb.Int(int64(1+rng.Intn(5))), minidb.Text("neg"), minidb.Float(rng.Float64()*4)); err != nil {
				t.Fatalf("iter %d: prepared negated insert: %v", i, err)
			}
		}
	}
}

// TestOrderedBatchParity drains ordered-walk and range-probe plans
// through NextBatch at random batch sizes and compares against the
// row-at-a-time stream of a fresh cursor.
func TestOrderedBatchParity(t *testing.T) {
	db := orderedObsDB(t)
	rng := rand.New(rand.NewSource(5))
	for _, q := range []string{
		"SELECT k, tag, v FROM obs ORDER BY k",
		"SELECT k, tag, v FROM obs ORDER BY k DESC",
		"SELECT k, v FROM obs WHERE k BETWEEN 2 AND 7 ORDER BY v LIMIT 6",
		"SELECT k, v FROM obs WHERE v >= 2.0",
	} {
		stmt, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		var viaNext [][]string
		rows, err := stmt.QueryStream()
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
			var r []string
			for _, v := range rows.Row() {
				r = append(r, v.String())
			}
			viaNext = append(viaNext, r)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}

		var viaBatch [][]string
		rows2, err := stmt.QueryStream()
		if err != nil {
			t.Fatal(err)
		}
		b := minidb.NewBatch()
		for rows2.NextBatch(b, 1+rng.Intn(5)) {
			for i := 0; i < b.Rows(); i++ {
				var r []string
				for c := 0; c < b.Cols(); c++ {
					r = append(r, b.At(c, i).String())
				}
				viaBatch = append(viaBatch, r)
			}
		}
		b.Release()
		if err := rows2.Err(); err != nil {
			t.Fatal(err)
		}
		if len(viaNext) != len(viaBatch) {
			t.Fatalf("%q: Next %d rows, NextBatch %d", q, len(viaNext), len(viaBatch))
		}
		for i := range viaNext {
			for j := range viaNext[i] {
				if viaNext[i][j] != viaBatch[i][j] {
					t.Fatalf("%q row %d col %d: Next %q, NextBatch %q", q, i, j, viaNext[i][j], viaBatch[i][j])
				}
			}
		}
	}
}

// TestExplainAccessPaths asserts the planner's choices through the
// EXPLAIN introspection — the property the scale harness and CI rely on
// to prove queries go through their indexes.
func TestExplainAccessPaths(t *testing.T) {
	db := orderedObsDB(t)
	for _, tc := range []struct {
		sql    string
		access string
		column string
		check  func(*minidb.PlanInfo) error
	}{
		{sql: "SELECT v FROM obs WHERE tag = 'a'", access: "index-eq", column: "tag"},
		{sql: "SELECT v FROM obs WHERE tag IN ('a', 'b')", access: "index-in", column: "tag"},
		{sql: "SELECT v FROM obs WHERE k >= 3 AND k < 8", access: "index-range", column: "k"},
		{sql: "SELECT v FROM obs WHERE k BETWEEN 3 AND 8", access: "index-range", column: "k"},
		{sql: "SELECT tag FROM obs WHERE k IS NULL", access: "index-null", column: "k"},
		// No ordered index on tag: a range on it stays a seq scan.
		{sql: "SELECT v FROM obs WHERE tag >= 'c'", access: "seq-scan"},
		// NULL IN-item and NULL BETWEEN-lower-bound stand down to scans.
		{sql: "SELECT v FROM obs WHERE tag IN ('a', NULL)", access: "seq-scan"},
		{sql: "SELECT v FROM obs WHERE k BETWEEN NULL AND 5", access: "seq-scan"},
		{
			sql: "SELECT k, v FROM obs ORDER BY k", access: "ordered-walk", column: "k",
			check: func(pi *minidb.PlanInfo) error {
				if pi.OrderedDesc {
					return fmt.Errorf("want ascending walk")
				}
				return nil
			},
		},
		{
			sql: "SELECT k, v FROM obs ORDER BY k DESC LIMIT 3", access: "ordered-walk", column: "k",
			check: func(pi *minidb.PlanInfo) error {
				if !pi.OrderedDesc || !pi.StreamLimit {
					return fmt.Errorf("want descending walk with stream limit, got %s", pi)
				}
				return nil
			},
		},
		{
			// A probe narrows first; ORDER BY then runs through the
			// bounded heap instead of a full sort.
			sql: "SELECT k, v FROM obs WHERE k >= 2 ORDER BY v LIMIT 4", access: "index-range", column: "k",
			check: func(pi *minidb.PlanInfo) error {
				if !pi.TopK {
					return fmt.Errorf("want top-k, got %s", pi)
				}
				return nil
			},
		},
		{
			// DISTINCT forbids both the walk and the heap (the reference
			// semantics dedup before sorting, keeping first-in-table-order
			// representatives).
			sql: "SELECT DISTINCT k FROM obs ORDER BY k DESC LIMIT 3", access: "seq-scan",
			check: func(pi *minidb.PlanInfo) error {
				if pi.TopK {
					return fmt.Errorf("DISTINCT must not use top-k, got %s", pi)
				}
				return nil
			},
		},
		{
			// Unknown column in WHERE: routed to the naive executor.
			sql: "SELECT v FROM obs WHERE nosuch = 1", access: "seq-scan",
			check: func(pi *minidb.PlanInfo) error {
				if !pi.Naive {
					return fmt.Errorf("want naive routing, got %s", pi)
				}
				return nil
			},
		},
	} {
		pi, err := db.Explain(tc.sql)
		if err != nil {
			t.Fatalf("%q: %v", tc.sql, err)
		}
		if pi.Access != tc.access {
			t.Fatalf("%q: access %q, want %q (%s)", tc.sql, pi.Access, tc.access, pi)
		}
		if tc.column != "" && pi.AccessColumn != tc.column {
			t.Fatalf("%q: column %q, want %q (%s)", tc.sql, pi.AccessColumn, tc.column, pi)
		}
		if tc.check != nil {
			if err := tc.check(pi); err != nil {
				t.Fatalf("%q: %v (%s)", tc.sql, err, pi)
			}
		}
	}
}

// TestExplainWithParams asserts the prepared-statement Explain honors
// bindings: the same statement probes or stands down depending on the
// bound value.
func TestExplainWithParams(t *testing.T) {
	db := orderedObsDB(t)
	stmt, err := db.Prepare("SELECT k, v FROM obs WHERE k >= ? AND k <= ?")
	if err != nil {
		t.Fatal(err)
	}
	pi, err := stmt.Explain(minidb.Int(2), minidb.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if pi.Access != "index-range" || pi.AccessColumn != "k" {
		t.Fatalf("bound range: %s", pi)
	}
	if pi.Candidates < 0 {
		t.Fatalf("bound range did not report candidates: %s", pi)
	}
	if _, err := stmt.Explain(minidb.Int(2)); err == nil {
		t.Fatal("Explain with missing binding did not error")
	}
}

// TestOrderedIndexConcurrentLazyBuild invalidates the index, then lets
// many readers probe simultaneously: exactly the window where the lazy
// rebuild races. Run under -race this pins the per-index build lock.
func TestOrderedIndexConcurrentLazyBuild(t *testing.T) {
	db := orderedObsDB(t)
	want, err := db.Query("SELECT k, v FROM obs WHERE k BETWEEN 2 AND 7 ORDER BY k, v")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := want.Strings()
	for round := 0; round < 5; round++ {
		// Mutation marks both ordered indexes stale.
		db.MustExec(fmt.Sprintf("INSERT INTO obs VALUES (100, 'zz', %d.5)", round))
		db.MustExec("DELETE FROM obs WHERE k = 100")
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rs, err := db.Query("SELECT k, v FROM obs WHERE k BETWEEN 2 AND 7 ORDER BY k, v")
				if err != nil {
					errs <- err
					return
				}
				got := rs.Strings()
				if len(got) != len(wantRows) {
					errs <- fmt.Errorf("concurrent probe: %d rows, want %d", len(got), len(wantRows))
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestRangeProbeAllocs pins the allocation budget of the range-probe hot
// path: a prepared statement probing an ordered index and draining
// through the pooled batch API must stay within a fixed per-query
// budget regardless of how many rows the range selects.
func TestRangeProbeAllocs(t *testing.T) {
	db := minidb.NewDatabase()
	db.MustExec("CREATE TABLE pts (ts FLOAT, v FLOAT)")
	rows := make([][]minidb.Value, 4096)
	for i := range rows {
		rows[i] = []minidb.Value{minidb.Float(float64(i)), minidb.Float(float64(i % 97))}
	}
	if err := db.InsertRows("pts", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE ORDERED INDEX pts_ts ON pts (ts)")
	stmt, err := db.Prepare("SELECT ts, v FROM pts WHERE ts >= ? AND ts < ?")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := minidb.Float(1024), minidb.Float(1536) // 512 rows
	b := minidb.NewBatch()
	defer b.Release()
	drain := func() {
		rows, err := stmt.QueryStream(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.NextBatch(b, 0) {
			n += b.Rows()
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if n != 512 {
			t.Fatalf("drained %d rows, want 512", n)
		}
	}
	drain() // warm: plan cache, lazy index build, pooled arrays
	allocs := testing.AllocsPerRun(200, drain)
	// Budget: cursor + env + batch bookkeeping + the sorted copy of the
	// probed span. The span copy is O(selected rows) bytes but a handful
	// of allocations; anything per-row would blow this budget at once.
	if allocs > 24 {
		t.Fatalf("range-probe query allocated %.0f times, budget 24", allocs)
	}
}
