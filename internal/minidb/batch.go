package minidb

import (
	"strings"
	"sync"
)

// This file is the vectorized half of the streaming SELECT result API.
// Row-at-a-time iteration (Rows.Next) materializes one fresh []Value per
// projected row — on a large fact-table scan that is one heap allocation
// per row, which the cold getPR path cannot afford. NextBatch instead
// delivers rows a batch at a time in column-oriented ValueBatches whose
// backing arrays are pooled and reused across refills, so a warmed scan
// allocates nothing per row (pinned by TestBatchScanAllocs).
//
// The row-at-a-time iterator is retained unchanged as the differential
// oracle: TestNextBatchMatchesNext proves both deliver the same row
// stream for the same query.

// DefaultBatchSize is the batch row capacity used when NextBatch is
// called with max <= 0.
const DefaultBatchSize = 256

// ValueBatch is a column-oriented batch of result rows: Col(c)[r] is the
// value of output column c in the batch's r-th row.
//
// Aliasing contract: the batch's contents are valid only until the next
// NextBatch refill or Release, whichever comes first — both reuse (and
// clear) the backing arrays. Value structs copied out of the batch stay
// valid forever (their Text fields share immutable string storage with
// the table). Release returns the batch to the shared pool; callers must
// not touch it afterwards.
type ValueBatch struct {
	cols [][]Value
	rows int
}

var batchPool = sync.Pool{New: func() any { return new(ValueBatch) }}

// NewBatch hands out a reset pooled batch. Pair with Release.
func NewBatch() *ValueBatch {
	return batchPool.Get().(*ValueBatch)
}

// Release clears the batch (dropping any string references so the pool
// pins no row storage) and returns it to the pool.
func (b *ValueBatch) Release() {
	b.reset(0)
	batchPool.Put(b)
}

// Rows returns the number of rows currently in the batch.
func (b *ValueBatch) Rows() int { return b.rows }

// Cols returns the number of output columns.
func (b *ValueBatch) Cols() int { return len(b.cols) }

// Col returns one output column; its length is Rows(). The slice is
// owned by the batch — see the aliasing contract above.
func (b *ValueBatch) Col(c int) []Value { return b.cols[c][:b.rows] }

// At returns the value of column c in row r.
func (b *ValueBatch) At(c, r int) Value { return b.cols[c][r] }

// reset resizes the batch to ncols empty columns. Column arrays grown by
// earlier fills are reused even across a smaller intermediate ncols (the
// full capacity is revived before truncating), and used value slots are
// cleared on every reset, so recycled arrays never pin stale string
// references yet never re-grow either.
func (b *ValueBatch) reset(ncols int) {
	cols := b.cols[:cap(b.cols)]
	for c := range cols {
		clear(cols[c])
		cols[c] = cols[c][:0]
	}
	for len(cols) < ncols {
		cols = append(cols, nil)
	}
	b.cols = cols[:ncols]
	b.rows = 0
}

// truncateRow drops any values appended beyond the batch's committed row
// count (a rejected DISTINCT duplicate, or a partially projected row
// abandoned on error), clearing the dropped slots — reset only clears
// up to each column's length, so an uncleaned slot beyond it would pin
// its string storage from inside the pool.
func (b *ValueBatch) truncateRow() {
	for c := range b.cols {
		if len(b.cols[c]) > b.rows {
			clear(b.cols[c][b.rows:])
			b.cols[c] = b.cols[c][:b.rows]
		}
	}
}

// rowKeyAt renders the DISTINCT dedup key of row i, byte-identical to
// rowKey on the equivalent row slice.
func (b *ValueBatch) rowKeyAt(i int) string {
	var sb strings.Builder
	for c := range b.cols {
		v := b.cols[c][i]
		sb.WriteByte(byte(v.Kind))
		sb.WriteString(v.String())
		sb.WriteByte(0)
	}
	return sb.String()
}

// NextBatch fills b with up to max result rows (DefaultBatchSize when
// max <= 0) and reports whether it delivered any. The rows delivered
// across successive calls are exactly those Next would have delivered —
// same order, same values, same terminal error (check Err after the
// final false). A Rows should be consumed through either Next or
// NextBatch, not both.
func (r *Rows) NextBatch(b *ValueBatch, max int) bool {
	if max <= 0 {
		max = DefaultBatchSize
	}
	b.reset(len(r.Columns))
	if r.done || r.err != nil {
		return false
	}
	if r.materialized {
		for b.rows < max {
			if r.limit >= 0 && r.emitted >= r.limit {
				r.finish()
				break
			}
			if r.matPos >= len(r.mat) {
				r.finish()
				break
			}
			row := r.mat[r.matPos]
			r.matPos++
			r.emitted++
			for c := range b.cols {
				b.cols[c] = append(b.cols[c], row[c])
			}
			b.rows++
		}
		return b.rows > 0
	}
	for b.rows < max {
		if r.limit >= 0 && r.emitted >= r.limit {
			r.finish()
			break
		}
		row, err := r.src.next()
		if err != nil {
			r.err = err
			r.finish()
			break
		}
		if row == nil {
			r.finish()
			break
		}
		if r.st.Star {
			// Copying the cell values detaches the batch from the join
			// iterators' reused combined-row buffer.
			for c := range b.cols {
				b.cols[c] = append(b.cols[c], row[c])
			}
		} else {
			r.env.row = row
			failed := false
			for c, it := range r.st.Items {
				v, err := eval(it.Expr, r.env)
				if err != nil {
					r.err = err
					r.finish()
					failed = true
					break
				}
				b.cols[c] = append(b.cols[c], v)
			}
			if failed {
				b.truncateRow()
				break
			}
		}
		if r.seen != nil {
			k := b.rowKeyAt(b.rows)
			if r.seen[k] {
				b.truncateRow()
				continue
			}
			r.seen[k] = true
		}
		b.rows++
		r.emitted++
	}
	return b.rows > 0
}
