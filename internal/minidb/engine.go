package minidb

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/minidb/segment"
)

// The disk engine makes a Database durable. Row mutations are logged to a
// tail WAL before the commit is acknowledged (group commit amortizes the
// fsync across concurrent committers); a background compactor seals full
// vecBlockSize-row runs of each table's tail into immutable columnar
// segment files with per-block zone maps, merges small segments, and
// periodically checkpoints the whole database into a fresh WAL so the log
// never grows without bound. Startup replays the committed WAL prefix,
// truncates any torn tail, reattaches segment files, and deletes orphans
// left by a crash mid-compaction.
//
// Lock order: compactMu (compaction admission) > db.mu > wal.mu / syncMu.
// WAL records are appended under the database write lock, so log order
// always equals apply order. Fsyncs never run under db.mu.

// Options configures a disk-backed database opened with Open.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// PageCacheBytes is the decoded-block cache budget. 0 means the
	// 64 MiB default; negative disables caching (the cold ablation).
	PageCacheBytes int64
	// PageCacheShards is rounded up to a power of two; 0 means 8.
	PageCacheShards int
	// DisableGroupCommit serializes committers, one fsync each — the
	// baseline the group-commit speedup is measured against.
	DisableGroupCommit bool
	// SealRows is the tail length that triggers sealing into a segment,
	// rounded up to a multiple of vecBlockSize. 0 means 4096.
	SealRows int
	// CheckpointBytes is the WAL size that triggers a checkpoint
	// rollover. 0 means 8 MiB.
	CheckpointBytes int64
	// MergeSegments is the per-table segment-file count that triggers a
	// merge compaction. 0 means 8.
	MergeSegments int
	// DisableAutoCompact stops the background compactor; tests drive
	// sealing and checkpoints explicitly via Seal and Checkpoint.
	DisableAutoCompact bool
	// DisableZoneMaps starts the engine with zone-map block skipping off
	// (runtime-togglable via SetZoneMapPruning) — the pruning ablation.
	DisableZoneMaps bool
}

func (o *Options) normalize() {
	if o.PageCacheBytes == 0 {
		o.PageCacheBytes = 64 << 20
	}
	if o.PageCacheBytes < 0 {
		o.PageCacheBytes = 0
	}
	if o.PageCacheShards <= 0 {
		o.PageCacheShards = 8
	}
	if o.SealRows <= 0 {
		o.SealRows = 4096
	}
	o.SealRows = (o.SealRows + vecBlockMask) &^ vecBlockMask
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 8 << 20
	}
	if o.MergeSegments <= 0 {
		o.MergeSegments = 8
	}
}

// Engine identifies the storage engine backing a Database.
type Engine interface {
	// Kind returns "memory" or "disk".
	Kind() string
	// Stats snapshots the engine's counters.
	Stats() EngineStats
}

// Engine returns the database's storage engine.
func (db *Database) Engine() Engine {
	if db.eng == nil {
		return memoryEngine{}
	}
	return db.eng
}

// memoryEngine is the zero-cost engine behind NewDatabase: no WAL, no
// segments, rows live in table tails forever. It is retained as the
// differential oracle the disk engine is checked against.
type memoryEngine struct{}

func (memoryEngine) Kind() string       { return "memory" }
func (memoryEngine) Stats() EngineStats { return EngineStats{Engine: "memory"} }

// EngineStats is a point-in-time snapshot of engine counters.
type EngineStats struct {
	Engine string `json:"engine"`
	Dir    string `json:"dir,omitempty"`

	PageCacheBudget    int64 `json:"pageCacheBudget,omitempty"`
	PageCacheBytes     int64 `json:"pageCacheBytes,omitempty"`
	PageCacheHits      int64 `json:"pageCacheHits,omitempty"`
	PageCacheMisses    int64 `json:"pageCacheMisses,omitempty"`
	PageCacheEvictions int64 `json:"pageCacheEvictions,omitempty"`

	BlocksScanned int64 `json:"blocksScanned,omitempty"`
	BlocksSkipped int64 `json:"blocksSkipped,omitempty"`

	WALBytes  int64 `json:"walBytes,omitempty"`
	WALFsyncs int64 `json:"walFsyncs,omitempty"`
	Commits   int64 `json:"commits,omitempty"`

	Seals       int64 `json:"seals,omitempty"`
	Merges      int64 `json:"merges,omitempty"`
	Checkpoints int64 `json:"checkpoints,omitempty"`

	Segments   int `json:"segments,omitempty"`
	SealedRows int `json:"sealedRows,omitempty"`
	TailRows   int `json:"tailRows,omitempty"`

	ZoneMapPruning bool `json:"zoneMapPruning,omitempty"`
	GroupCommit    bool `json:"groupCommit,omitempty"`
}

type diskEngine struct {
	db    *Database
	opts  Options
	dir   string
	cache *segment.PageCache

	// files maps live segment-file ids to open handles; guarded by db.mu.
	// Retired files are closed and dropped here immediately but stay on
	// disk until the next checkpoint sweep, because the current WAL's
	// historical seal records still reference them on replay.
	files   map[uint64]*segment.File
	fileSeq atomic.Uint64

	// wal is swapped by checkpoints under db.mu + syncMu + compactMu, so
	// holding any one of the three makes the read consistent.
	wal         *segment.WAL
	walID       uint64
	fsyncsPrior int64 // fsyncs issued by retired WALs

	// Group-commit state. appended counts WAL records; durable is the
	// highest appended count known fsynced; one leader at a time fsyncs
	// with syncMu released, followers wait on syncCond.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	durable  uint64
	syncing  bool
	syncErr  error
	appended atomic.Uint64
	noSync   atomic.Bool

	pruneOn   atomic.Bool
	replaying bool

	compactMu sync.Mutex // serializes seal/merge/checkpoint passes
	wake      chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	seals         atomic.Int64
	merges        atomic.Int64
	checkpoints   atomic.Int64
	blocksScanned atomic.Int64
	blocksSkipped atomic.Int64
}

func (e *diskEngine) Kind() string { return "disk" }

// Open opens (or creates) a disk-backed database at opts.Dir, replaying
// the WAL's committed prefix and reattaching segment files.
func Open(opts Options) (*Database, error) {
	if opts.Dir == "" {
		return nil, errf("exec", "minidb: Open requires Options.Dir")
	}
	opts.normalize()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	db := NewDatabase()
	e := &diskEngine{
		db:    db,
		opts:  opts,
		dir:   opts.Dir,
		cache: segment.NewPageCache(opts.PageCacheBytes, opts.PageCacheShards),
		files: make(map[uint64]*segment.File),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	e.syncCond = sync.NewCond(&e.syncMu)
	e.pruneOn.Store(!opts.DisableZoneMaps)
	db.eng = e
	if err := e.recover(); err != nil {
		for _, f := range e.files {
			f.Close()
		}
		if e.wal != nil {
			e.wal.Close()
		}
		return nil, err
	}
	if !opts.DisableAutoCompact {
		e.wg.Add(1)
		go e.compactLoop()
	}
	return db, nil
}

// Close stops the compactor, flushes and fsyncs the WAL, and closes all
// files. For a memory database it is a no-op.
func (db *Database) Close() error {
	if db.eng == nil {
		return nil
	}
	return db.eng.close()
}

func (e *diskEngine) close() error {
	e.closeOnce.Do(func() {
		close(e.stop)
		e.wg.Wait()
		e.db.mu.Lock()
		if e.wal != nil {
			e.closeErr = e.wal.Close()
		}
		for id, f := range e.files {
			f.Close()
			delete(e.files, id)
		}
		e.db.mu.Unlock()
	})
	return e.closeErr
}

// File naming: a single monotonic id sequence covers WALs and segments;
// CURRENT names the live WAL and is the recovery root.

func walName(id uint64) string { return fmt.Sprintf("wal-%010d.log", id) }
func segName(id uint64) string { return fmt.Sprintf("seg-%010d.seg", id) }

func parseFileID(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	id, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

func (e *diskEngine) walPath(id uint64) string { return filepath.Join(e.dir, walName(id)) }
func (e *diskEngine) segPath(id uint64) string { return filepath.Join(e.dir, segName(id)) }
func (e *diskEngine) nextFileID() uint64       { return e.fileSeq.Add(1) }

// writeCurrent atomically points the recovery root at a new WAL.
func writeCurrent(dir, name string) error {
	tmp := filepath.Join(dir, "CURRENT.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(name + "\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "CURRENT")); err != nil {
		return err
	}
	return fsyncDir(dir)
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// ---------------------------------------------------------------------------
// Commit path

// logRecord appends one record to the WAL; callers hold the database
// write lock. Append failures latch into syncErr so every subsequent
// commit fails loudly instead of silently losing durability.
func (e *diskEngine) logRecord(rec []byte) {
	if e.replaying {
		return
	}
	if err := e.wal.Append(rec); err != nil {
		e.syncMu.Lock()
		if e.syncErr == nil {
			e.syncErr = err
		}
		e.syncMu.Unlock()
		return
	}
	e.appended.Add(1)
	if e.wal.Size() > e.opts.CheckpointBytes {
		e.kick()
	}
}

func (e *diskEngine) logInsert(t *Table, rows []Row) {
	if len(rows) == 0 {
		return
	}
	e.logRecord(encInsert(t.Name, rows))
	if len(t.Rows) >= e.opts.SealRows {
		e.kick()
	}
}

// commitDurable is called after the statement lock is released: it blocks
// until everything this commit appended is fsynced (riding along with any
// later appends the leader happens to cover).
func (db *Database) commitDurable(err error) error {
	e := db.eng
	if e == nil {
		return err
	}
	if serr := e.waitDurable(e.appended.Load()); serr != nil && err == nil {
		err = serr
	}
	return err
}

// waitDurable blocks until the WAL is durable through sequence seq.
//
// Group commit: the first arrival becomes the leader — it flushes the
// buffer, releases every lock, and fsyncs while later commits buffer
// appends behind it and wait on the condvar. One fsync acknowledges the
// leader and every follower whose append preceded the flush.
func (e *diskEngine) waitDurable(seq uint64) error {
	if seq == 0 || e.noSync.Load() {
		return nil
	}
	if e.opts.DisableGroupCommit {
		return e.syncSerialized(seq)
	}
	for {
		e.syncMu.Lock()
		for {
			if e.syncErr != nil {
				err := e.syncErr
				e.syncMu.Unlock()
				return err
			}
			if e.durable >= seq {
				e.syncMu.Unlock()
				return nil
			}
			if !e.syncing {
				break
			}
			e.syncCond.Wait()
		}
		e.syncing = true
		w := e.wal
		e.syncMu.Unlock()

		// Capture the append horizon before flushing: everything counted
		// here is in the buffer by the time Flush returns, so one fsync
		// makes it all durable.
		target := e.appended.Load()
		err := w.Flush()
		if err == nil {
			err = w.Sync()
		}

		e.syncMu.Lock()
		e.syncing = false
		if e.wal != w {
			// A checkpoint swapped the WAL mid-fsync; the checkpoint made
			// everything durable itself, so this result (even an error on
			// the retired file) is irrelevant.
			err = nil
		} else if err != nil {
			e.syncErr = err
		} else if target > e.durable {
			e.durable = target
		}
		e.syncCond.Broadcast()
		e.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
}

// syncSerialized is the no-group-commit baseline: every committer takes
// the sync mutex and issues its own fsync, even when an earlier
// committer's fsync already covered this commit's appends — skipping in
// that case would be group commit by another name, and the option exists
// precisely to measure what batching buys.
func (e *diskEngine) syncSerialized(seq uint64) error {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	if e.syncErr != nil {
		return e.syncErr
	}
	w := e.wal
	target := e.appended.Load()
	if err := w.Flush(); err != nil {
		e.syncErr = err
		return err
	}
	if err := w.Sync(); err != nil {
		e.syncErr = err
		return err
	}
	if target > e.durable {
		e.durable = target
	}
	e.syncCond.Broadcast()
	return nil
}

// BulkLoad runs fn with per-commit fsyncs suspended, then seals every
// full block and checkpoints, making the loaded data durable with a
// handful of fsyncs instead of one per insert batch. Durability of
// commits made while fn runs (from any goroutine) is deferred to the
// final checkpoint. On a memory database fn just runs.
func (db *Database) BulkLoad(fn func() error) error {
	if db.eng == nil {
		return fn()
	}
	return db.eng.bulkLoad(fn)
}

func (e *diskEngine) bulkLoad(fn func() error) error {
	e.noSync.Store(true)
	err := fn()
	e.noSync.Store(false)
	if err != nil {
		if serr := e.waitDurable(e.appended.Load()); serr != nil {
			return serr
		}
		return err
	}
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	for _, name := range e.db.TableNames() {
		if err := e.sealTable(name, vecBlockSize); err != nil {
			return err
		}
	}
	return e.checkpoint()
}

// ---------------------------------------------------------------------------
// Block reads

// blockRows returns the decoded rows of one sealed block, consulting the
// page cache first. The hit path does not allocate.
func (e *diskEngine) blockRows(ref *blockRef) ([]Row, error) {
	key := segment.PageKey{File: ref.fileID, Block: uint32(ref.idx)}
	if v, ok := e.cache.Get(key); ok {
		return v.(*decodedBlock).rows, nil
	}
	payload, err := ref.file.ReadBlock(ref.idx)
	if err != nil {
		return nil, err
	}
	rows, memBytes, err := decodeBlock(payload)
	if err != nil {
		return nil, err
	}
	e.cache.Put(key, &decodedBlock{rows: rows}, memBytes)
	return rows, nil
}

// SetZoneMapPruning toggles zone-map block skipping at runtime (the
// pruning ablation). No-op on a memory database.
func (db *Database) SetZoneMapPruning(on bool) {
	if db.eng != nil {
		db.eng.pruneOn.Store(on)
	}
}

// ZoneMapPruning reports whether zone-map block skipping is enabled.
func (db *Database) ZoneMapPruning() bool {
	return db.eng != nil && db.eng.pruneOn.Load()
}

// ---------------------------------------------------------------------------
// Compaction: seal, merge, checkpoint

func (e *diskEngine) kick() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *diskEngine) compactLoop() {
	defer e.wg.Done()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-e.wake:
		case <-tick.C:
		}
		e.sweep()
	}
}

func (e *diskEngine) sweep() {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	for _, name := range e.db.TableNames() {
		e.sealTable(name, e.opts.SealRows) // background pass: errors retried next sweep
		e.mergeTable(name)
	}
	if e.wal.Size() > e.opts.CheckpointBytes {
		e.checkpoint()
	}
}

// Seal synchronously seals every full vecBlockSize run of every table's
// tail into segment files — the deterministic test/bench hook.
func (db *Database) Seal() error {
	if db.eng == nil {
		return nil
	}
	e := db.eng
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	for _, name := range e.db.TableNames() {
		if err := e.sealTable(name, vecBlockSize); err != nil {
			return err
		}
	}
	return nil
}

// Compact synchronously runs one full compaction sweep — seal every full
// tail run, merge small segment runs, checkpoint if the WAL outgrew its
// threshold — the deterministic equivalent of one background-compactor
// pass. No-op on a memory database.
func (db *Database) Compact() error {
	if db.eng == nil {
		return nil
	}
	e := db.eng
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	for _, name := range e.db.TableNames() {
		if err := e.sealTable(name, vecBlockSize); err != nil {
			return err
		}
		if err := e.mergeTable(name); err != nil {
			return err
		}
	}
	if e.wal.Size() > e.opts.CheckpointBytes {
		return e.checkpoint()
	}
	return nil
}

// Checkpoint synchronously rolls the WAL over into a fresh checkpointed
// log and deletes retired files. No-op on a memory database.
func (db *Database) Checkpoint() error {
	if db.eng == nil {
		return nil
	}
	e := db.eng
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	return e.checkpoint()
}

// sealTable encodes the table's oldest full blocks into a new segment
// file and flips them from tail to sealed. Caller holds compactMu.
//
// The encode runs under the database read lock (in-place UPDATE mutations
// need the write lock, so rows cannot change beneath the encoder); the
// fsync-and-rename runs with no lock held; the flip revalidates under the
// write lock that no rewrite invalidated the snapshot — inserts are fine
// (append-only never invalidates a prefix), so only rewriteGen, identity,
// and sealedRows are checked.
func (e *diskEngine) sealTable(name string, minRows int) error {
	e.db.mu.RLock()
	t := e.db.tables[name]
	var k int
	var gen uint64
	var base int
	if t != nil {
		k = (len(t.Rows) >> vecBlockShift) << vecBlockShift
		gen, base = t.rewriteGen, t.sealedRows
	}
	e.db.mu.RUnlock()
	if t == nil || k == 0 || k < minRows {
		return nil
	}

	id := e.nextFileID()
	path := e.segPath(id)
	w, err := segment.NewWriter(path)
	if err != nil {
		return err
	}

	e.db.mu.RLock()
	if e.db.tables[name] != t || t.rewriteGen != gen || t.sealedRows != base || len(t.Rows) < k {
		e.db.mu.RUnlock()
		w.Abort()
		return nil
	}
	ncols := len(t.Columns)
	nblocks := k >> vecBlockShift
	zms := make([][]zoneEntry, nblocks)
	for b := 0; b < nblocks && err == nil; b++ {
		var payload []byte
		payload, zms[b] = encodeBlock(t.Rows[b<<vecBlockShift:(b+1)<<vecBlockShift], ncols)
		_, err = w.Append(payload, encodeZoneMap(zms[b]))
	}
	e.db.mu.RUnlock()
	if err != nil {
		w.Abort()
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	f, err := segment.Open(path)
	if err != nil {
		os.Remove(path)
		return err
	}

	e.db.mu.Lock()
	if e.db.tables[name] != t || t.rewriteGen != gen || t.sealedRows != base || len(t.Rows) < k {
		e.db.mu.Unlock()
		f.Close()
		os.Remove(path)
		return nil
	}
	for b := 0; b < nblocks; b++ {
		t.blocks = append(t.blocks, blockRef{file: f, fileID: id, idx: b, zm: zms[b]})
	}
	t.sealedRows += k
	// Fresh tail allocation so the sealed prefix's backing array is
	// released instead of pinned by the re-sliced tail.
	t.Rows = append([]Row(nil), t.Rows[k:]...)
	e.files[id] = f
	e.logRecord(encSeal(name, id, k))
	e.seals.Add(1)
	e.db.mu.Unlock()
	return nil
}

// mergeTable folds all of a table's sealed blocks into one segment file
// once they span at least MergeSegments files, preserving block (and so
// row) order — emission order is part of the engine's differential
// contract with the in-memory oracle. Block payloads are copied verbatim;
// zone maps carry over unchanged. Caller holds compactMu.
func (e *diskEngine) mergeTable(name string) error {
	e.db.mu.RLock()
	t := e.db.tables[name]
	var refs []blockRef
	var gen uint64
	if t != nil {
		distinct := make(map[uint64]struct{})
		for i := range t.blocks {
			distinct[t.blocks[i].fileID] = struct{}{}
		}
		if len(distinct) >= e.opts.MergeSegments {
			refs = append([]blockRef(nil), t.blocks...)
			gen = t.rewriteGen
		}
	}
	e.db.mu.RUnlock()
	if len(refs) == 0 {
		return nil
	}

	id := e.nextFileID()
	path := e.segPath(id)
	w, err := segment.NewWriter(path)
	if err != nil {
		return err
	}
	for i := range refs {
		// Off-lock read: if a concurrent rewrite retires a source file
		// mid-copy the read fails and the merge aborts; the flip's
		// rewriteGen check would have rejected it anyway.
		payload, err := refs[i].file.ReadBlock(refs[i].idx)
		if err != nil {
			w.Abort()
			return err
		}
		if _, err := w.Append(payload, encodeZoneMap(refs[i].zm)); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Finish(); err != nil {
		return err
	}
	f, err := segment.Open(path)
	if err != nil {
		os.Remove(path)
		return err
	}

	e.db.mu.Lock()
	if e.db.tables[name] != t || t.rewriteGen != gen || len(t.blocks) < len(refs) {
		e.db.mu.Unlock()
		f.Close()
		os.Remove(path)
		return nil
	}
	old := make(map[uint64]struct{})
	for i := range refs {
		old[refs[i].fileID] = struct{}{}
		t.blocks[i] = blockRef{file: f, fileID: id, idx: i, zm: refs[i].zm}
	}
	still := make(map[uint64]struct{})
	for i := range t.blocks {
		still[t.blocks[i].fileID] = struct{}{}
	}
	for oldID := range old {
		if _, ok := still[oldID]; !ok {
			e.retireFileLocked(oldID)
		}
	}
	e.files[id] = f
	e.logRecord(encMerge(name, id, len(refs)))
	e.merges.Add(1)
	e.db.mu.Unlock()
	return nil
}

// retireFileLocked drops a segment file from the live set: evict its
// cached blocks and close the handle. The bytes stay on disk until the
// next checkpoint — the current WAL's replay still references them.
// Caller holds the database write lock.
func (e *diskEngine) retireFileLocked(id uint64) {
	e.cache.DropFile(id)
	if f := e.files[id]; f != nil {
		f.Close()
		delete(e.files, id)
	}
}

// checkpoint writes the full database state (schema + segment refs + 'I'
// records for table tails) into a fresh WAL, atomically repoints CURRENT
// at it, and deletes the old WAL plus any segment file the new state no
// longer references. Caller holds compactMu.
func (e *diskEngine) checkpoint() error {
	newID := e.nextFileID()
	path := e.walPath(newID)

	e.db.mu.Lock()
	w, err := segment.CreateWAL(path)
	if err != nil {
		e.db.mu.Unlock()
		return err
	}
	fail := func(err error) error {
		e.db.mu.Unlock()
		w.Close()
		os.Remove(path)
		return err
	}
	if err := w.Append(encCheckpoint(e.db)); err != nil {
		return fail(err)
	}
	names := make([]string, 0, len(e.db.tables))
	for n := range e.db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.db.tables[n]
		if len(t.Rows) == 0 {
			continue
		}
		if err := w.Append(encInsert(n, t.Rows)); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := w.Sync(); err != nil {
		return fail(err)
	}
	if err := writeCurrent(e.dir, walName(newID)); err != nil {
		return fail(err)
	}

	oldW, oldID := e.wal, e.walID
	e.syncMu.Lock()
	e.wal = w
	e.walID = newID
	// Everything appended so far is captured by the checkpoint, so it is
	// durable regardless of what the old WAL had fsynced.
	e.durable = e.appended.Load()
	e.fsyncsPrior += oldW.Fsyncs()
	e.syncCond.Broadcast()
	e.syncMu.Unlock()

	referenced := make(map[uint64]struct{})
	for _, t := range e.db.tables {
		for i := range t.blocks {
			referenced[t.blocks[i].fileID] = struct{}{}
		}
	}
	e.checkpoints.Add(1)
	e.db.mu.Unlock()

	// An in-flight group-commit leader may still be fsyncing oldW; Close
	// and concurrent fsync are safe on *os.File, and the leader discards
	// results for a retired WAL.
	oldW.Close()
	os.Remove(e.walPath(oldID))
	e.removeUnreferencedSegs(referenced)
	return nil
}

// removeUnreferencedSegs deletes segment files the given reference set no
// longer names. Safe to run without locks: new segment files are only
// created under compactMu (held by our caller), and concurrent mutations
// can only retire references, never resurrect them.
func (e *diskEngine) removeUnreferencedSegs(referenced map[uint64]struct{}) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		id, ok := parseFileID(ent.Name(), "seg-", ".seg")
		if !ok {
			continue
		}
		if _, live := referenced[id]; !live {
			os.Remove(filepath.Join(e.dir, ent.Name()))
		}
	}
}

// ---------------------------------------------------------------------------
// Recovery

type idxDecl struct {
	table, column string
	ordered       bool
}

// recover rebuilds the database from CURRENT's WAL: replay the committed
// prefix, truncate the torn tail, rebuild indexes once at the end, and
// delete orphan files from interrupted compactions.
func (e *diskEngine) recover() error {
	maxID := uint64(0)
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if id, ok := parseFileID(ent.Name(), "wal-", ".log"); ok && id > maxID {
			maxID = id
		}
		if id, ok := parseFileID(ent.Name(), "seg-", ".seg"); ok && id > maxID {
			maxID = id
		}
	}
	e.fileSeq.Store(maxID)

	curData, err := os.ReadFile(filepath.Join(e.dir, "CURRENT"))
	if errors.Is(err, fs.ErrNotExist) {
		// Fresh directory (or a crash before the very first CURRENT write:
		// any stray files are orphans).
		e.walID = e.nextFileID()
		w, err := segment.CreateWAL(e.walPath(e.walID))
		if err != nil {
			return err
		}
		if err := writeCurrent(e.dir, walName(e.walID)); err != nil {
			w.Close()
			return err
		}
		e.wal = w
		e.cleanupOrphans()
		return nil
	}
	if err != nil {
		return err
	}
	walFile := strings.TrimSpace(string(curData))
	walID, ok := parseFileID(walFile, "wal-", ".log")
	if !ok {
		return errf("exec", "minidb: corrupt CURRENT %q", walFile)
	}
	records, validLen, err := segment.ReadWAL(filepath.Join(e.dir, walFile))
	if err != nil {
		return fmt.Errorf("minidb: read wal: %w", err)
	}

	e.replaying = true
	var decls []idxDecl
	for i, rec := range records {
		d, err := e.applyRecord(rec)
		if err != nil {
			e.replaying = false
			return fmt.Errorf("minidb: wal replay record %d: %w", i, err)
		}
		decls = append(decls, d...)
	}
	// Indexes are built once over the final replayed state instead of
	// incrementally per record — a replayed rewrite would otherwise
	// trigger full rebuilds mid-stream.
	for _, d := range decls {
		t := e.db.tables[d.table]
		if t == nil {
			continue
		}
		var err error
		if d.ordered {
			_, err = t.addOrderedIndex(d.column)
		} else {
			_, err = t.addIndex(d.column)
		}
		if err != nil {
			e.replaying = false
			return fmt.Errorf("minidb: wal replay index %s.%s: %w", d.table, d.column, err)
		}
	}
	e.replaying = false

	w, err := segment.OpenWALAppend(filepath.Join(e.dir, walFile), validLen)
	if err != nil {
		return err
	}
	e.wal = w
	e.walID = walID
	e.cleanupOrphans()
	return nil
}

// applyRecord replays one WAL record against the in-memory state,
// returning any index declarations to build after replay finishes.
func (e *diskEngine) applyRecord(rec []byte) ([]idxDecl, error) {
	r := &rbuf{b: rec}
	kind := r.u8()
	switch kind {
	case recCreateTable:
		name := r.str()
		n := int(r.u32())
		if r.err != nil || n < 0 || n > len(rec) {
			return nil, errf("exec", "corrupt create-table record")
		}
		cols := make([]Column, n)
		for i := range cols {
			cols[i] = Column{Name: r.str(), Type: ColumnType(r.u8())}
		}
		if r.err != nil {
			return nil, r.err
		}
		if _, exists := e.db.tables[name]; exists {
			return nil, errf("exec", "replayed CREATE of existing table %q", name)
		}
		t := newTable(name, cols)
		t.eng = e
		e.db.tables[name] = t
		return nil, nil

	case recDropTable:
		name := r.str()
		if r.err != nil {
			return nil, r.err
		}
		delete(e.db.tables, name)
		return nil, nil

	case recCreateIndex:
		table, column := r.str(), r.str()
		ordered := r.u8() == 1
		if r.err != nil {
			return nil, r.err
		}
		return []idxDecl{{table: table, column: column, ordered: ordered}}, nil

	case recInsert, recRewrite:
		name := r.str()
		rows, err := decodeRecRows(r)
		if err != nil {
			return nil, err
		}
		t := e.db.tables[name]
		if t == nil {
			return nil, errf("exec", "replayed rows for missing table %q", name)
		}
		for _, row := range rows {
			if len(row) != len(t.Columns) {
				return nil, errf("exec", "replayed row width %d for table %q (%d columns)",
					len(row), name, len(t.Columns))
			}
		}
		if kind == recInsert {
			t.Rows = append(t.Rows, rows...)
		} else {
			t.Rows = rows
			t.sealedRows = 0
			t.blocks = nil // files stay for the final orphan sweep
		}
		return nil, nil

	case recSeal:
		name := r.str()
		id := r.u64()
		k := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		t := e.db.tables[name]
		if t == nil {
			return nil, errf("exec", "replayed seal for missing table %q", name)
		}
		if k <= 0 || k&vecBlockMask != 0 || k > len(t.Rows) {
			return nil, errf("exec", "replayed seal of %d rows, tail %d", k, len(t.Rows))
		}
		f, err := e.openSeg(id)
		if err != nil {
			return nil, err
		}
		nblocks := k >> vecBlockShift
		if f.NumBlocks() != nblocks {
			return nil, errf("exec", "segment %d has %d blocks, seal wants %d", id, f.NumBlocks(), nblocks)
		}
		for b := 0; b < nblocks; b++ {
			zm, err := decodeZoneMap(f.Blocks[b].Meta)
			if err != nil {
				return nil, err
			}
			t.blocks = append(t.blocks, blockRef{file: f, fileID: id, idx: b, zm: zm})
		}
		t.sealedRows += k
		t.Rows = append([]Row(nil), t.Rows[k:]...)
		return nil, nil

	case recMerge:
		name := r.str()
		id := r.u64()
		n := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		t := e.db.tables[name]
		if t == nil {
			return nil, errf("exec", "replayed merge for missing table %q", name)
		}
		if n <= 0 || n > len(t.blocks) {
			return nil, errf("exec", "replayed merge of %d blocks, table has %d", n, len(t.blocks))
		}
		f, err := e.openSeg(id)
		if err != nil {
			return nil, err
		}
		if f.NumBlocks() < n {
			return nil, errf("exec", "segment %d has %d blocks, merge wants %d", id, f.NumBlocks(), n)
		}
		for b := 0; b < n; b++ {
			zm, err := decodeZoneMap(f.Blocks[b].Meta)
			if err != nil {
				return nil, err
			}
			t.blocks[b] = blockRef{file: f, fileID: id, idx: b, zm: zm}
		}
		return nil, nil

	case recCheckpoint:
		return e.applyCheckpoint(r)
	}
	return nil, errf("exec", "unknown wal record kind %q", kind)
}

func decodeRecRows(r *rbuf) ([]Row, error) {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		return nil, errf("exec", "corrupt row-batch record")
	}
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, r.rowVals())
	}
	if r.err != nil {
		return nil, r.err
	}
	return rows, nil
}

func (e *diskEngine) applyCheckpoint(r *rbuf) ([]idxDecl, error) {
	if len(e.db.tables) != 0 {
		return nil, errf("exec", "checkpoint record is not first in its log")
	}
	var decls []idxDecl
	ntables := int(r.u32())
	if r.err != nil || ntables < 0 || ntables > len(r.b) {
		return nil, errf("exec", "corrupt checkpoint record")
	}
	for i := 0; i < ntables; i++ {
		name := r.str()
		ncols := int(r.u32())
		if r.err != nil || ncols <= 0 || ncols > len(r.b) {
			return nil, errf("exec", "corrupt checkpoint table %q", name)
		}
		cols := make([]Column, ncols)
		for c := range cols {
			cols[c] = Column{Name: r.str(), Type: ColumnType(r.u8())}
		}
		t := newTable(name, cols)
		t.eng = e
		nHash := int(r.u32())
		for h := 0; h < nHash && r.err == nil; h++ {
			decls = append(decls, idxDecl{table: name, column: r.str()})
		}
		nOrd := int(r.u32())
		for o := 0; o < nOrd && r.err == nil; o++ {
			decls = append(decls, idxDecl{table: name, column: r.str(), ordered: true})
		}
		sealed := int(r.u32())
		nblocks := int(r.u32())
		if r.err != nil || nblocks < 0 || sealed != nblocks<<vecBlockShift {
			return nil, errf("exec", "corrupt checkpoint geometry for table %q", name)
		}
		for b := 0; b < nblocks; b++ {
			id := r.u64()
			idx := int(r.u32())
			if r.err != nil {
				return nil, r.err
			}
			f, err := e.openSeg(id)
			if err != nil {
				return nil, err
			}
			if idx < 0 || idx >= f.NumBlocks() {
				return nil, errf("exec", "checkpoint block %d/%d out of range", id, idx)
			}
			zm, err := decodeZoneMap(f.Blocks[idx].Meta)
			if err != nil {
				return nil, err
			}
			t.blocks = append(t.blocks, blockRef{file: f, fileID: id, idx: idx, zm: zm})
		}
		t.sealedRows = sealed
		e.db.tables[name] = t
	}
	if r.err != nil {
		return nil, r.err
	}
	return decls, nil
}

func (e *diskEngine) openSeg(id uint64) (*segment.File, error) {
	if f := e.files[id]; f != nil {
		return f, nil
	}
	f, err := segment.Open(e.segPath(id))
	if err != nil {
		return nil, err
	}
	e.files[id] = f
	return f, nil
}

// cleanupOrphans deletes files a crash left behind: .tmp files from
// interrupted atomic writes, segment files no table references, and WALs
// other than CURRENT's. Runs single-threaded at the end of recovery.
func (e *diskEngine) cleanupOrphans() {
	referenced := make(map[uint64]struct{})
	for _, t := range e.db.tables {
		for i := range t.blocks {
			referenced[t.blocks[i].fileID] = struct{}{}
		}
	}
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		full := filepath.Join(e.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(full)
		case strings.HasPrefix(name, "seg-"):
			id, ok := parseFileID(name, "seg-", ".seg")
			if !ok {
				continue
			}
			if _, live := referenced[id]; !live {
				if f := e.files[id]; f != nil {
					f.Close()
					delete(e.files, id)
				}
				os.Remove(full)
			}
		case strings.HasPrefix(name, "wal-"):
			if id, ok := parseFileID(name, "wal-", ".log"); !ok || id != e.walID {
				os.Remove(full)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Stats

// EngineStats snapshots the storage engine's counters.
func (db *Database) EngineStats() EngineStats {
	return db.Engine().Stats()
}

func (e *diskEngine) Stats() EngineStats {
	cs := e.cache.Snapshot()
	st := EngineStats{
		Engine:             "disk",
		Dir:                e.dir,
		PageCacheBudget:    e.opts.PageCacheBytes,
		PageCacheBytes:     cs.Bytes,
		PageCacheHits:      cs.Hits,
		PageCacheMisses:    cs.Misses,
		PageCacheEvictions: cs.Evictions,
		BlocksScanned:      e.blocksScanned.Load(),
		BlocksSkipped:      e.blocksSkipped.Load(),
		Commits:            int64(e.appended.Load()),
		Seals:              e.seals.Load(),
		Merges:             e.merges.Load(),
		Checkpoints:        e.checkpoints.Load(),
		ZoneMapPruning:     e.pruneOn.Load(),
		GroupCommit:        !e.opts.DisableGroupCommit,
	}
	e.db.mu.RLock()
	st.WALBytes = e.wal.Size()
	st.WALFsyncs = e.wal.Fsyncs()
	st.Segments = len(e.files)
	for _, t := range e.db.tables {
		st.SealedRows += t.sealedRows
		st.TailRows += len(t.Rows)
	}
	e.db.mu.RUnlock()
	e.syncMu.Lock()
	st.WALFsyncs += e.fsyncsPrior
	e.syncMu.Unlock()
	return st
}
