package minidb

import (
	"fmt"
	"strings"
)

// PlanInfo describes how one SELECT executes: the chosen access path,
// order/limit pushdown, join strategy, and compiled kernel count. It is
// computed per execution — the access choice depends on the bound
// parameters, current index sizes, and which indexes exist — so tests
// can assert "this query used the ordered index" instead of inferring it
// from timing.
type PlanInfo struct {
	Table string
	Naive bool // routed to the naive executor (unsafe predicates)

	// Access is one of seq-scan, index-eq, index-in, index-range,
	// index-null, or ordered-walk; AccessColumn names the probed index
	// column for the index kinds and the walk.
	Access       string
	AccessColumn string
	Candidates   int // narrowed candidate row count; -1 when not narrowed

	OrderedDesc bool // ordered-walk direction
	TopK        bool // ORDER BY+LIMIT retained through a bounded heap
	StreamLimit bool // LIMIT stops a streaming source early

	Join string // "", "hash", "nested-loop"

	Kernels  int // base-scan conjuncts compiled to vectorized kernels
	Residual int // total base-scan conjuncts (re-checked on candidates)

	// Disk-engine full scans: how many sealed blocks the scan would visit
	// and how many the zone maps prove skippable for these bindings.
	Blocks        int
	BlocksSkipped int
}

// String renders a compact one-line EXPLAIN.
func (pi *PlanInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table=%s access=%s", pi.Table, pi.Access)
	if pi.Naive {
		b.WriteString(" naive")
	}
	if pi.AccessColumn != "" {
		fmt.Fprintf(&b, " column=%s", pi.AccessColumn)
	}
	if pi.Candidates >= 0 {
		fmt.Fprintf(&b, " candidates=%d", pi.Candidates)
	}
	if pi.Access == accessOrderedWalk {
		if pi.OrderedDesc {
			b.WriteString(" desc")
		} else {
			b.WriteString(" asc")
		}
	}
	if pi.TopK {
		b.WriteString(" top-k")
	}
	if pi.StreamLimit {
		b.WriteString(" stream-limit")
	}
	if pi.Join != "" {
		fmt.Fprintf(&b, " join=%s", pi.Join)
	}
	if pi.Residual > 0 {
		fmt.Fprintf(&b, " kernels=%d/%d", pi.Kernels, pi.Residual)
	}
	if pi.Blocks > 0 {
		fmt.Fprintf(&b, " blocks=%d skipped=%d", pi.Blocks, pi.BlocksSkipped)
	}
	return b.String()
}

// Explain reports how the prepared SELECT would execute with the given
// parameter bindings, without running it. (Like execution, it may lazily
// build stale ordered indexes it probes.)
func (s *Stmt) Explain(args ...Value) (*PlanInfo, error) {
	sel, ok := s.st.(*SelectStmt)
	if !ok {
		return nil, errf("exec", "use Exec for non-SELECT statements")
	}
	if err := s.bindCheck(args); err != nil {
		return nil, err
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	p, err := s.cachedPlan(sel)
	if err != nil {
		return nil, err
	}
	return p.explain(args)
}

// Explain reports how a parameter-free SELECT would execute.
func (db *Database) Explain(sql string) (*PlanInfo, error) {
	sel, err := parseSelect(sql)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.planSelect(sel)
	if err != nil {
		return nil, err
	}
	return p.explain(nil)
}

func (p *selectPlan) explain(args []Value) (*PlanInfo, error) {
	info := &PlanInfo{Table: p.base.Name, Candidates: -1}
	if p.unsafe {
		info.Naive = true
		info.Access = accessSeqScan
		return info, nil
	}
	acc, err := p.chooseAccess(args)
	if err != nil {
		return nil, err
	}
	info.Access = acc.kind
	info.AccessColumn = acc.column
	if acc.idx != nil {
		info.Candidates = len(acc.idx)
	}
	if acc.walk != nil {
		info.OrderedDesc = acc.walkDesc
	}

	st := p.st
	switch {
	case p.hasAgg: // aggregates consume everything; LIMIT is ignored
	case len(st.OrderBy) > 0:
		if acc.walk != nil {
			info.StreamLimit = st.Limit >= 0
		} else if st.Limit >= 0 && !st.Distinct {
			info.TopK = true
		}
	default:
		info.StreamLimit = st.Limit >= 0
	}

	if p.join != nil {
		if p.join.leftKey >= 0 && p.join.rightKey >= 0 {
			info.Join = "hash"
		} else {
			info.Join = "nested-loop"
		}
	}
	for i := range p.vecPreds {
		if p.vecPreds[i].kind != vpFallback {
			info.Kernels++
		}
	}
	info.Residual = len(p.leftPred)

	// Report zone-map skipping for full scans over sealed blocks: bind the
	// kernels to these parameters and probe each block's zone map exactly
	// as the scan would.
	if acc.kind == accessSeqScan && len(p.base.blocks) > 0 {
		info.Blocks = len(p.base.blocks)
		if p.db.eng != nil && p.db.eng.pruneOn.Load() {
			var vf vecFilter
			v := p.base.view()
			vf.bind(p.vecPreds, args, nil, &v)
			for i := range p.base.blocks {
				if pruneBlock(p.base.blocks[i].zm, vf.kernels) {
					info.BlocksSkipped++
				}
			}
		}
	}
	return info, nil
}
