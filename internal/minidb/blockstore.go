package minidb

import (
	"pperfgrid/internal/minidb/segment"
)

// Block-aligned position math: sealed blocks hold exactly vecBlockSize
// rows, and a table's sealed prefix is always a multiple of vecBlockSize,
// so a global row position maps to (pos>>vecBlockShift, pos&vecBlockMask)
// with no per-block offset table.
const (
	vecBlockShift = 8
	vecBlockMask  = vecBlockSize - 1
)

// blockRef points a table at one sealed block: the segment file handle,
// the file's engine-wide id (the page-cache key), the block index within
// the file, and the block's decoded zone map for plan-time and scan-time
// pruning.
type blockRef struct {
	file   *segment.File
	fileID uint64
	idx    int
	zm     []zoneEntry
}

// decodedBlock is the page-cache value: the decoded rows of one block,
// sharing a flat Value arena. Blocks are immutable once sealed, so cached
// rows are safe to share between concurrent readers — and must never be
// mutated in place (UPDATE/DELETE materialize the table first, cloning
// every sealed row).
type decodedBlock struct {
	rows []Row
}

// rowsView is a position-addressed view over a table's rows: the sealed,
// disk-resident prefix (blocks) followed by the in-memory tail. Global
// positions — the ones stored in hash and ordered indexes — are stable
// across sealing, so index structures survive tail rows migrating into
// segments.
//
// The view memoizes the most recently decoded block, so sequential scans
// pay one page-cache probe per vecBlockSize rows, not per row. A view is
// single-use and single-goroutine (each iterator embeds its own); the
// shared state behind it (page cache, segment files) is concurrency-safe.
//
// Block fetch errors latch into err; row returns an all-NULL row for the
// failed block so callers can run tight loops and check err once per
// batch. Every consumer (scan iterators, join builds, index rebuilds)
// checks err and propagates it.
type rowsView struct {
	tail   []Row
	sealed int
	blocks []blockRef
	eng    *diskEngine
	ncols  int
	curID  int
	cur    []Row
	err    error
}

// view snapshots the table's current row layout. Callers must hold the
// database lock (read or write) for the view's lifetime.
func (t *Table) view() rowsView {
	return rowsView{
		tail:   t.Rows,
		sealed: t.sealedRows,
		blocks: t.blocks,
		eng:    t.eng,
		ncols:  len(t.Columns),
		curID:  -1,
	}
}

// total returns the number of addressable rows.
func (v *rowsView) total() int { return v.sealed + len(v.tail) }

// row returns the row at global position pos. The tail fast path is
// inlinable; the sealed path hides the decode behind a non-inlined miss
// method so pure-memory tables pay only the one comparison.
func (v *rowsView) row(pos int) Row {
	if pos >= v.sealed {
		return v.tail[pos-v.sealed]
	}
	return v.sealedRow(pos)
}

func (v *rowsView) sealedRow(pos int) Row {
	b := pos >> vecBlockShift
	if b != v.curID {
		rows, err := v.eng.blockRows(&v.blocks[b])
		if err != nil {
			if v.err == nil {
				v.err = err
			}
			rows = nullBlockRows(v.ncols)
		}
		v.curID, v.cur = b, rows
	}
	return v.cur[pos&vecBlockMask]
}

// nullBlockRows builds an all-NULL stand-in block after a fetch error so
// the scan loop in flight stays memory-safe while the latched error
// propagates at the next checkpoint.
func nullBlockRows(ncols int) []Row {
	r := make(Row, ncols)
	rows := make([]Row, vecBlockSize)
	for i := range rows {
		rows[i] = r
	}
	return rows
}
