package minidb

import (
	"math"
)

// Columnar block codec. A sealed block holds exactly vecBlockSize rows,
// encoded column-major so the vectorized kernels' working set stays
// contiguous and so text bytes can be materialized with one string
// allocation per column per block:
//
//	u32 nrows, u32 ncols
//	per column:
//	  u32 textLen, textLen bytes   all of the column's text, row order
//	  nrows entries: u8 kind, then
//	    KindInt   u64 (two's complement)
//	    KindFloat u64 (IEEE-754 bits)
//	    KindText  u32 byte length into the column's text blob
//	    KindNull  nothing
//
// Decoding fills a single flat []Value arena and slices it row-major, so
// a decoded block costs one arena allocation, one row-header slice, and
// one string per text-bearing column — not one allocation per row.

// zoneEntry is one column's zone map: the Compare-order extremes of the
// block's non-NULL values (Kind==KindNull when the column is all NULL in
// this block) and the NULL count. Pruning uses only Compare semantics, so
// it is sound exactly for the predicate shapes whose kernels compare with
// Compare: <, <=, >, >=, BETWEEN (plain and negated), and IS [NOT] NULL.
// Equality shapes use Equal, which folds numeric text ('5' = 5) and so
// cannot be bounded by Compare extremes.
type zoneEntry struct {
	min, max Value
	nulls    int32
}

// encodeBlock encodes rows (each of width ncols) into a block payload,
// returning the block's zone map alongside so the sealer can both write
// it to the segment footer (via encodeZoneMap) and keep it in the live
// blockRef without a decode round trip.
func encodeBlock(rows []Row, ncols int) (payload []byte, zm []zoneEntry) {
	w := &wbuf{b: make([]byte, 0, 16+len(rows)*ncols*9)}
	w.u32(uint32(len(rows)))
	w.u32(uint32(ncols))
	for c := 0; c < ncols; c++ {
		textLen := 0
		for _, r := range rows {
			if r[c].Kind == KindText {
				textLen += len(r[c].Text)
			}
		}
		w.u32(uint32(textLen))
		for _, r := range rows {
			if r[c].Kind == KindText {
				w.b = append(w.b, r[c].Text...)
			}
		}
		for _, r := range rows {
			v := r[c]
			w.u8(byte(v.Kind))
			switch v.Kind {
			case KindInt:
				w.u64(uint64(v.Int))
			case KindFloat:
				w.u64(math.Float64bits(v.Float))
			case KindText:
				w.u32(uint32(len(v.Text)))
			}
		}
	}
	return w.b, buildZoneMap(rows, ncols)
}

func buildZoneMap(rows []Row, ncols int) []zoneEntry {
	zm := make([]zoneEntry, ncols)
	for c := 0; c < ncols; c++ {
		z := &zm[c]
		for _, r := range rows {
			v := r[c]
			if v.IsNull() {
				z.nulls++
				continue
			}
			if z.min.IsNull() || Compare(v, z.min) < 0 {
				z.min = v
			}
			if z.max.IsNull() || Compare(v, z.max) > 0 {
				z.max = v
			}
		}
	}
	return zm
}

func encodeZoneMap(zm []zoneEntry) []byte {
	w := &wbuf{b: make([]byte, 0, 8+len(zm)*24)}
	w.u32(uint32(len(zm)))
	for i := range zm {
		w.val(zm[i].min)
		w.val(zm[i].max)
		w.u32(uint32(zm[i].nulls))
	}
	return w.b
}

func decodeZoneMap(meta []byte) ([]zoneEntry, error) {
	r := &rbuf{b: meta}
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(meta) {
		return nil, errf("exec", "segment: corrupt zone map")
	}
	zm := make([]zoneEntry, n)
	for i := range zm {
		zm[i].min = r.val()
		zm[i].max = r.val()
		zm[i].nulls = int32(r.u32())
	}
	if r.err != nil {
		return nil, r.err
	}
	return zm, nil
}

// decodeBlock decodes a block payload into rows backed by one flat Value
// arena. memBytes is the decoded in-memory footprint estimate charged to
// the page cache.
func decodeBlock(payload []byte) (rows []Row, memBytes int64, err error) {
	r := &rbuf{b: payload}
	nrows := int(r.u32())
	ncols := int(r.u32())
	if r.err != nil || nrows < 0 || ncols <= 0 || nrows*ncols > len(payload) {
		return nil, 0, errf("exec", "segment: corrupt block header")
	}
	arena := make([]Value, nrows*ncols)
	rows = make([]Row, nrows)
	for i := range rows {
		rows[i] = arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	textTotal := 0
	for c := 0; c < ncols; c++ {
		textLen := int(r.u32())
		if r.err != nil || textLen < 0 || r.off+textLen > len(payload) {
			return nil, 0, errf("exec", "segment: corrupt block text")
		}
		// One allocation for the whole column's text; per-row values are
		// substrings sharing its backing array.
		text := string(payload[r.off : r.off+textLen])
		r.off += textLen
		textTotal += textLen
		pos := 0
		for i := 0; i < nrows; i++ {
			k := Kind(r.u8())
			switch k {
			case KindNull:
			case KindInt:
				arena[i*ncols+c] = Int(int64(r.u64()))
			case KindFloat:
				arena[i*ncols+c] = Float(math.Float64frombits(r.u64()))
			case KindText:
				n := int(r.u32())
				if r.err != nil || pos+n > len(text) {
					return nil, 0, errf("exec", "segment: corrupt block text entry")
				}
				arena[i*ncols+c] = Text(text[pos : pos+n])
				pos += n
			default:
				return nil, 0, errf("exec", "segment: corrupt block value kind")
			}
		}
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	const valueSize = 40 // unsafe.Sizeof(Value{}) on 64-bit
	memBytes = int64(nrows*ncols)*valueSize + int64(textTotal) + int64(nrows)*24
	return rows, memBytes, nil
}
