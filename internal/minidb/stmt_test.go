package minidb

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// negZero returns -0.0 without tripping the compiler's constant folding.
func negZero() float64 { return math.Copysign(0, -1) }

func TestPrepareQueryParams(t *testing.T) {
	db := execDB(t)
	st, err := db.Prepare(`SELECT runid FROM executions WHERE numprocesses = ? ORDER BY runid`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := st.Query(Int(2))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"100"}, {"104"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
	// Rebinding the same statement with a different value.
	rs, err = st.Query(Int(16))
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"103"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
}

func TestPrepareCachesByText(t *testing.T) {
	db := execDB(t)
	a, err := db.Prepare(`SELECT runid FROM executions WHERE runid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Prepare(`SELECT runid FROM executions WHERE runid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical SQL did not hit the statement cache")
	}
}

func TestPrepareBindErrors(t *testing.T) {
	db := execDB(t)
	st, err := db.Prepare(`SELECT runid FROM executions WHERE runid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(); err == nil {
		t.Error("want arity error for missing binding")
	}
	if _, err := st.Query(Int(1), Int(2)); err == nil {
		t.Error("want arity error for extra binding")
	}
	if _, err := db.Query(`SELECT runid FROM executions WHERE runid = ?`); err == nil {
		t.Error("Query should reject parameterized SQL")
	}
	if _, err := db.Exec(`DELETE FROM executions WHERE runid = ?`); err == nil {
		t.Error("Exec should reject parameterized SQL")
	}
}

func TestPreparedExec(t *testing.T) {
	db := execDB(t)
	ins, err := db.Prepare(`INSERT INTO executions VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ins.Exec(Int(200), Int(64), Text("2004-04-01"), Float(20.5)); err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	del, err := db.Prepare(`DELETE FROM executions WHERE runid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := del.Exec(Int(200)); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
}

func TestQueryStream(t *testing.T) {
	db := execDB(t)
	st, err := db.Prepare(`SELECT runid, gflops FROM executions WHERE numprocesses < ?`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryStream(Int(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		got = append(got, rows.Row()[0].String())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"100", "101", "104"}; !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	// After exhaustion the read lock is released: writes must not block.
	if _, err := db.Exec(`DELETE FROM executions WHERE runid = 100`); err != nil {
		t.Fatal(err)
	}
}

func TestQueryStreamEarlyClose(t *testing.T) {
	db := execDB(t)
	st, err := db.Prepare(`SELECT runid FROM executions`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryStream()
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("want at least one row")
	}
	rows.Close()
	rows.Close() // idempotent
	if _, err := db.Exec(`DELETE FROM executions WHERE runid = 104`); err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexSQLAndProbe(t *testing.T) {
	db := execDB(t)
	if _, err := db.Exec(`CREATE INDEX idx_runid ON executions (runid)`); err != nil {
		t.Fatal(err)
	}
	cols, err := db.Indexes("executions")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, []string{"runid"}) {
		t.Errorf("indexes = %v", cols)
	}
	rs, err := db.Query(`SELECT gflops FROM executions WHERE runid = 102`)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"5.1"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
	// A probe for an absent key returns no rows (not a scan fallback).
	rs, err = db.Query(`SELECT gflops FROM executions WHERE runid = 999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("got %v want empty", rs.Strings())
	}
	if err := db.CreateIndex("executions", "nosuch"); err == nil {
		t.Error("want error indexing a missing column")
	}
}

func TestIndexMaintenance(t *testing.T) {
	db := execDB(t)
	if err := db.CreateIndex("executions", "numprocesses"); err != nil {
		t.Fatal(err)
	}
	query := func() [][]string {
		t.Helper()
		rs, err := db.Query(`SELECT runid FROM executions WHERE numprocesses = 2 ORDER BY runid`)
		if err != nil {
			t.Fatal(err)
		}
		return rs.Strings()
	}
	if want := [][]string{{"100"}, {"104"}}; !reflect.DeepEqual(query(), want) {
		t.Fatalf("baseline: got %v", query())
	}
	// Insert is reflected.
	db.MustExec(`INSERT INTO executions VALUES (105, 2, '2004-03-18', 1.7)`)
	if want := [][]string{{"100"}, {"104"}, {"105"}}; !reflect.DeepEqual(query(), want) {
		t.Errorf("after insert: got %v", query())
	}
	// Update moves a row between buckets.
	db.MustExec(`UPDATE executions SET numprocesses = 4 WHERE runid = 104`)
	if want := [][]string{{"100"}, {"105"}}; !reflect.DeepEqual(query(), want) {
		t.Errorf("after update: got %v", query())
	}
	// Delete drops rows from the index.
	db.MustExec(`DELETE FROM executions WHERE runid = 100`)
	if want := [][]string{{"105"}}; !reflect.DeepEqual(query(), want) {
		t.Errorf("after delete: got %v", query())
	}
}

func TestDropTableInvalidatesStmtPlans(t *testing.T) {
	db := execDB(t)
	st, err := db.Prepare(`SELECT runid FROM executions WHERE runid = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(Int(100)); err != nil { // populate the plan cache
		t.Fatal(err)
	}
	if _, err := db.Exec(`DROP TABLE executions`); err != nil {
		t.Fatal(err)
	}
	// The cached plan is released eagerly (not pinned until next use);
	// re-executing replans and reports the missing table.
	st.planMu.Lock()
	stale := st.plan != nil
	st.planMu.Unlock()
	if stale {
		t.Error("DROP TABLE left a cached plan pinning the dropped table")
	}
	if _, err := st.Query(Int(100)); err == nil {
		t.Error("want error querying a dropped table")
	}
	// Recreating the table (new schema generation) replans cleanly.
	db.MustExec(`CREATE TABLE executions (runid INT, numprocesses INT, rundate TEXT, gflops FLOAT)`)
	db.MustExec(`INSERT INTO executions VALUES (100, 2, '2004-03-15', 1.5)`)
	rs, err := st.Query(Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("after recreate: got %v", rs.Strings())
	}
}

func TestDeleteErrorKeepsTableConsistent(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE t (a INT, s TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (9, 'del'), (5, 'keep'), (0, 'x'), (7, 'tail')`)
	db.MustExec(`CREATE INDEX t_a ON t (a)`)
	// Row 1 deletes, row 2 is kept (compacted into slot 0), row 3 errors
	// mid-scan on the unknown column — the table must not end up with
	// duplicated rows, and indexes must match the surviving rows.
	_, err := db.Exec(`DELETE FROM t WHERE s = 'del' OR (a < 2 AND badcol = 1)`)
	if err == nil {
		t.Fatal("want eval error from unknown column")
	}
	rs, qerr := db.Query(`SELECT a, s FROM t`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	want := [][]string{{"5", "keep"}, {"0", "x"}, {"7", "tail"}}
	if !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("after failed DELETE: got %v want %v", rs.Strings(), want)
	}
	// Indexed probe agrees with the surviving rows.
	rs, qerr = db.Query(`SELECT s FROM t WHERE a = 5`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if wantP := [][]string{{"keep"}}; !reflect.DeepEqual(rs.Strings(), wantP) {
		t.Errorf("indexed probe after failed DELETE: got %v want %v", rs.Strings(), wantP)
	}
}

func TestIndexKeyNormalization(t *testing.T) {
	// Numeric equality across kinds shares one key; distinct text does not.
	cases := []struct {
		a, b Value
		same bool
	}{
		{Int(5), Float(5), true},
		{Int(5), Text("5"), true},
		{Float(5), Text("5.0"), true},
		{Float(0), Float(negZero()), true},
		{Text("abc"), Text("abc"), true},
		{Text("abc"), Text("abd"), false},
		{Int(5), Int(6), false},
	}
	for _, c := range cases {
		ka, oka := indexKey(c.a)
		kb, okb := indexKey(c.b)
		if !oka || !okb {
			t.Fatalf("indexKey(%v/%v) not ok", c.a, c.b)
		}
		if (ka == kb) != c.same {
			t.Errorf("indexKey(%v)=%q indexKey(%v)=%q, same=%v want %v", c.a, ka, c.b, kb, ka == kb, c.same)
		}
	}
	if _, ok := indexKey(Null()); ok {
		t.Error("NULL must not be indexed")
	}
}

func TestHashJoinMatchesNaive(t *testing.T) {
	db := NewDatabase()
	db.MustExec(`CREATE TABLE results (execid TEXT, fociid INT, value FLOAT)`)
	db.MustExec(`CREATE TABLE foci (fociid INT, path TEXT)`)
	db.MustExec(`INSERT INTO foci VALUES (1, '/a'), (2, '/b'), (3, '/c')`)
	db.MustExec(`INSERT INTO results VALUES ('1', 1, 0.5), ('1', 2, 1.5), ('2', 1, 2.5), ('2', 3, 3.5), ('1', NULL, 9.9)`)
	db.MustExec(`CREATE INDEX r_exec ON results (execid)`)
	queries := []string{
		`SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid = f.fociid WHERE r.execid = '1'`,
		`SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid = f.fociid`,
		`SELECT f.path, r.value FROM results r JOIN foci f ON r.fociid >= f.fociid WHERE r.value < 3`,
		`SELECT COUNT(*) FROM results r JOIN foci f ON r.fociid = f.fociid WHERE f.path != '/b'`,
	}
	for _, q := range queries {
		planned, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		naive, err := db.QueryNaive(q)
		if err != nil {
			t.Fatalf("%s: naive: %v", q, err)
		}
		if !reflect.DeepEqual(planned.Strings(), naive.Strings()) {
			t.Errorf("%s:\nplanned %v\nnaive   %v", q, planned.Strings(), naive.Strings())
		}
	}
}

func TestStreamDistinctAndLimit(t *testing.T) {
	db := execDB(t)
	st, err := db.Prepare(`SELECT DISTINCT rundate FROM executions LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryStream()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		got = append(got, rows.Row()[0].String())
	}
	if want := []string{"2004-03-15", "2004-03-16"}; !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestPreparedInsertSignedParams(t *testing.T) {
	db := execDB(t)
	ins, err := db.Prepare(`INSERT INTO executions VALUES (?, -?, ?, +?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 4 {
		t.Fatalf("NumParams = %d, want 4", ins.NumParams())
	}
	if n, err := ins.Exec(Int(300), Int(8), Text("2004-05-01"), Float(3.25)); err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	rs, err := db.Query(`SELECT numprocesses, gflops FROM executions WHERE runid = 300`)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"-8", "3.25"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
	// Negating a bound negative flips the sign back; NULL stays NULL.
	if n, err := ins.Exec(Int(301), Int(-4), Text("2004-05-02"), Null()); err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	rs, err = db.Query(`SELECT numprocesses, gflops FROM executions WHERE runid = 301`)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"4", "NULL"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
	// Binding text under a unary minus is an execution-time error.
	if _, err := ins.Exec(Int(302), Text("oops"), Text("2004-05-03"), Float(1)); err == nil {
		t.Error("want error negating a text value")
	}
	// Signed parameters also bind in WHERE clauses.
	sel, err := db.Prepare(`SELECT runid FROM executions WHERE numprocesses = -?`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err = sel.Query(Int(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"300"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("got %v want %v", rs.Strings(), want)
	}
}

// TestPreparedInsertMaintainsIndexes pins the contract PublishResults
// relies on: inserts through the prepared-statement path update hash
// indexes incrementally and mark ordered indexes stale, exactly like the
// SQL-text and InsertRow paths.
func TestPreparedInsertMaintainsIndexes(t *testing.T) {
	db := execDB(t)
	if err := db.CreateIndex("executions", "numprocesses"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateOrderedIndex("executions", "gflops"); err != nil {
		t.Fatal(err)
	}
	// Warm the ordered index so the insert must re-mark it stale.
	if _, err := db.Query(`SELECT runid FROM executions WHERE gflops > 100`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO executions (runid, numprocesses, gflops) VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(Int(400), Int(2), Float(123.5)); err != nil {
		t.Fatal(err)
	}
	rs, err := db.Query(`SELECT runid FROM executions WHERE numprocesses = 2 ORDER BY runid`)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"100"}, {"104"}, {"400"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("hash-index probe after prepared insert: got %v want %v", rs.Strings(), want)
	}
	rs, err = db.Query(`SELECT runid FROM executions WHERE gflops > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"400"}}; !reflect.DeepEqual(rs.Strings(), want) {
		t.Errorf("ordered-index range after prepared insert: got %v want %v", rs.Strings(), want)
	}
}

func TestStmtCacheEpochEviction(t *testing.T) {
	db := execDB(t)
	for i := 0; i < stmtCacheCap+8; i++ {
		sql := fmt.Sprintf(`SELECT runid FROM executions WHERE runid = %d`, i)
		if _, err := db.Prepare(sql); err != nil {
			t.Fatal(err)
		}
	}
	// The cache stayed bounded and statements still work.
	st, err := db.Prepare(`SELECT COUNT(*) FROM executions`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(); err != nil {
		t.Fatal(err)
	}
}
