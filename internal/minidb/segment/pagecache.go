package segment

import (
	"sync"
	"sync/atomic"
)

// PageKey identifies one cached block: the owning segment file's id and
// the block index within it. Segment files are immutable, so a key's
// content never changes — entries are only ever inserted and evicted,
// never updated in place.
type PageKey struct {
	File  uint64
	Block uint32
}

// PageCache is a sharded, byte-budgeted cache of decoded blocks with
// second-chance (clock) eviction. The byte budget counts caller-reported
// sizes (decoded in-memory footprint, not on-disk payload bytes),
// continuing the byte-accounting discipline of the PR 4 result cache.
//
// The hit path is one shard-mutex lock, one map lookup, and one bool
// store — no allocation and no list surgery (unlike LRU, a hit does not
// reorder anything; it just sets the entry's reference bit, which the
// clock hand inspects at eviction time).
type PageCache struct {
	shards []pcShard
	mask   uint32

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type pcShard struct {
	mu      sync.Mutex
	limit   int64
	used    int64
	entries map[PageKey]*pcEntry
	ring    []*pcEntry // clock order; position is not meaningful, only membership
	hand    int
	_       [24]byte // keep shards off each other's cache lines
}

type pcEntry struct {
	key   PageKey
	val   any
	bytes int64
	slot  int // index in ring, for O(1) removal
	ref   bool
}

// NewPageCache builds a cache with the given total byte budget, split
// evenly across shards. shards is rounded up to a power of two; <= 0
// picks a default of 8. A budget <= 0 disables caching entirely (every
// Get misses, Put is a no-op) — the "cold, uncached" ablation.
func NewPageCache(budget int64, shards int) *PageCache {
	if shards <= 0 {
		shards = 8
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &PageCache{shards: make([]pcShard, n), mask: uint32(n - 1)}
	if budget > 0 {
		per := budget / int64(n)
		if per < 1 {
			per = 1
		}
		for i := range c.shards {
			c.shards[i].limit = per
			c.shards[i].entries = make(map[PageKey]*pcEntry)
		}
	}
	return c
}

func (c *PageCache) shard(k PageKey) *pcShard {
	h := uint32(k.File)*0x9e3779b9 ^ k.Block*0x85ebca6b
	h ^= h >> 16
	return &c.shards[h&c.mask]
}

// Get returns the cached value for k. The hit path does not allocate.
func (c *PageCache) Get(k PageKey) (any, bool) {
	s := c.shard(k)
	if s.entries == nil {
		c.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.entries[k]
	if ok {
		e.ref = true
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.val, true
}

// Put inserts a value of the given byte size, evicting second-chance
// victims as needed. Values larger than the shard budget are not cached.
// Inserting an existing key is a no-op (blocks are immutable; the first
// decode wins and concurrent decoders produced identical values).
func (c *PageCache) Put(k PageKey, val any, bytes int64) {
	s := c.shard(k)
	if s.entries == nil || bytes > s.limit {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return
	}
	for s.used+bytes > s.limit && len(s.ring) > 0 {
		s.evictOne()
		c.evictions.Add(1)
	}
	// New entries start with the reference bit clear: only a hit earns the
	// second chance. That keeps the policy scan-resistant — a single cold
	// sweep inserts blocks that are immediately evictable and cannot flush
	// the re-referenced hot set.
	e := &pcEntry{key: k, val: val, bytes: bytes, slot: len(s.ring), ref: false}
	s.ring = append(s.ring, e)
	s.entries[k] = e
	s.used += bytes
}

// evictOne advances the clock hand, clearing reference bits, until it
// finds an unreferenced entry to drop. An entry whose bit was set by a
// hit survives the sweep that clears it and is only evictable on the
// next full revolution — the "second chance".
func (s *pcShard) evictOne() {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		if e.ref {
			e.ref = false
			s.hand++
			continue
		}
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring[s.hand].slot = s.hand
		s.ring = s.ring[:last]
		delete(s.entries, e.key)
		s.used -= e.bytes
		return
	}
}

// DropFile evicts every cached block of one segment file, called when a
// compaction retires the file.
func (c *PageCache) DropFile(file uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		if s.entries == nil {
			continue
		}
		s.mu.Lock()
		for k, e := range s.entries {
			if k.File != file {
				continue
			}
			last := len(s.ring) - 1
			s.ring[e.slot] = s.ring[last]
			s.ring[e.slot].slot = e.slot
			s.ring = s.ring[:last]
			delete(s.entries, k)
			s.used -= e.bytes
		}
		if s.hand > len(s.ring) {
			s.hand = 0
		}
		s.mu.Unlock()
	}
}

// Stats is a point-in-time cache counter snapshot.
type Stats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64
	Entries                 int
}

// Snapshot reads the cache's counters and occupancy.
func (c *PageCache) Snapshot() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.entries == nil {
			continue
		}
		s.mu.Lock()
		st.Bytes += s.used
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}
