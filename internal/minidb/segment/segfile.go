package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Segment files are immutable once written: a header, concatenated block
// payloads, then a footer directory describing every block (offset,
// length, payload CRC, and an opaque caller-supplied meta blob — minidb
// stores the block's zone map there). The file becomes visible atomically:
// the writer builds it under a .tmp name, fsyncs, renames into place, and
// fsyncs the directory, so a crash mid-write leaves only a .tmp orphan
// that recovery deletes.
//
// Layout:
//
//	"PSEG1\n\x00\x00"                               8-byte header
//	block payloads, back to back
//	footer: u32 nblocks, then per block
//	        {u64 off, u32 len, u32 crc, u32 metaLen, meta}
//	trailer: u64 footerOff, u32 footerLen, u32 crc32(footer)
const (
	segHeaderLen  = 8
	segTrailerLen = 16
)

var segHeader = [segHeaderLen]byte{'P', 'S', 'E', 'G', '1', '\n', 0, 0}

// BlockInfo locates one block inside a segment file.
type BlockInfo struct {
	Off  int64
	Len  int32
	CRC  uint32
	Meta []byte // opaque per-block metadata from the writer
}

// Writer builds a segment file block by block. Not safe for concurrent
// use; a segment is built by one compaction/seal at a time.
type Writer struct {
	path string // final path
	tmp  string
	f    *os.File
	off  int64
	dir  []BlockInfo
	err  error
}

// NewWriter starts a segment file that will become visible at path once
// Finish succeeds.
func NewWriter(path string) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{path: path, tmp: tmp, f: f}
	if _, err := f.Write(segHeader[:]); err != nil {
		w.Abort()
		return nil, err
	}
	w.off = segHeaderLen
	return w, nil
}

// Append writes one block payload with its metadata blob and returns the
// block's index within the file.
func (w *Writer) Append(payload, meta []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if _, err := w.f.Write(payload); err != nil {
		w.err = err
		return 0, err
	}
	info := BlockInfo{
		Off: w.off, Len: int32(len(payload)),
		CRC:  crc32.ChecksumIEEE(payload),
		Meta: append([]byte(nil), meta...),
	}
	w.off += int64(len(payload))
	w.dir = append(w.dir, info)
	return len(w.dir) - 1, nil
}

// Finish writes the footer, fsyncs, renames the file into place, and
// fsyncs the directory so the rename itself is durable.
func (w *Writer) Finish() error {
	if w.err != nil {
		w.Abort()
		return w.err
	}
	footer := encodeFooter(w.dir)
	var trailer [segTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(w.off))
	binary.LittleEndian.PutUint32(trailer[8:12], uint32(len(footer)))
	binary.LittleEndian.PutUint32(trailer[12:16], crc32.ChecksumIEEE(footer))
	if _, err := w.f.Write(footer); err != nil {
		w.Abort()
		return err
	}
	if _, err := w.f.Write(trailer[:]); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return syncDir(filepath.Dir(w.path))
}

// Abort discards the partially written file.
func (w *Writer) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	os.Remove(w.tmp)
}

func encodeFooter(dir []BlockInfo) []byte {
	n := 4
	for i := range dir {
		n += 8 + 4 + 4 + 4 + len(dir[i].Meta)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dir)))
	for i := range dir {
		b := &dir[i]
		out = binary.LittleEndian.AppendUint64(out, uint64(b.Off))
		out = binary.LittleEndian.AppendUint32(out, uint32(b.Len))
		out = binary.LittleEndian.AppendUint32(out, b.CRC)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Meta)))
		out = append(out, b.Meta...)
	}
	return out
}

// File is an opened, validated segment file. ReadBlock uses positional
// reads, so one File serves concurrent readers without coordination.
type File struct {
	Path   string
	Blocks []BlockInfo
	f      *os.File
}

// Open validates a segment file's header, trailer, and footer CRC and
// returns a handle with the decoded block directory.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fail := func(format string, args ...any) (*File, error) {
		f.Close()
		return nil, fmt.Errorf("segment: %s: "+format, append([]any{path}, args...)...)
	}
	if st.Size() < segHeaderLen+segTrailerLen {
		return fail("truncated (%d bytes)", st.Size())
	}
	var hdr [segHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fail("read header: %v", err)
	}
	if hdr != segHeader {
		return fail("bad header")
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-segTrailerLen); err != nil {
		return fail("read trailer: %v", err)
	}
	footOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	footLen := int64(binary.LittleEndian.Uint32(trailer[8:12]))
	footCRC := binary.LittleEndian.Uint32(trailer[12:16])
	if footOff < segHeaderLen || footOff+footLen+segTrailerLen != st.Size() {
		return fail("bad trailer geometry")
	}
	footer := make([]byte, footLen)
	if _, err := f.ReadAt(footer, footOff); err != nil {
		return fail("read footer: %v", err)
	}
	if crc32.ChecksumIEEE(footer) != footCRC {
		return fail("footer checksum mismatch")
	}
	blocks, err := decodeFooter(footer)
	if err != nil {
		return fail("%v", err)
	}
	for i := range blocks {
		b := &blocks[i]
		if b.Off < segHeaderLen || b.Off+int64(b.Len) > footOff {
			return fail("block %d out of bounds", i)
		}
	}
	return &File{Path: path, Blocks: blocks, f: f}, nil
}

func decodeFooter(footer []byte) ([]BlockInfo, error) {
	if len(footer) < 4 {
		return nil, fmt.Errorf("short footer")
	}
	n := binary.LittleEndian.Uint32(footer)
	footer = footer[4:]
	blocks := make([]BlockInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(footer) < 20 {
			return nil, fmt.Errorf("short footer entry %d", i)
		}
		var b BlockInfo
		b.Off = int64(binary.LittleEndian.Uint64(footer[0:8]))
		b.Len = int32(binary.LittleEndian.Uint32(footer[8:12]))
		b.CRC = binary.LittleEndian.Uint32(footer[12:16])
		metaLen := binary.LittleEndian.Uint32(footer[16:20])
		footer = footer[20:]
		if uint32(len(footer)) < metaLen {
			return nil, fmt.Errorf("short footer meta %d", i)
		}
		b.Meta = footer[:metaLen:metaLen]
		footer = footer[metaLen:]
		blocks = append(blocks, b)
	}
	return blocks, nil
}

// NumBlocks returns the block count.
func (s *File) NumBlocks() int { return len(s.Blocks) }

// ReadBlock reads and checksum-verifies one block payload.
func (s *File) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= len(s.Blocks) {
		return nil, fmt.Errorf("segment: %s: no block %d", s.Path, i)
	}
	b := &s.Blocks[i]
	payload := make([]byte, b.Len)
	if _, err := s.f.ReadAt(payload, b.Off); err != nil {
		return nil, fmt.Errorf("segment: %s: read block %d: %w", s.Path, i, err)
	}
	if crc32.ChecksumIEEE(payload) != b.CRC {
		return nil, fmt.Errorf("segment: %s: block %d checksum mismatch", s.Path, i)
	}
	return payload, nil
}

// Close releases the file handle.
func (s *File) Close() error { return s.f.Close() }

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
