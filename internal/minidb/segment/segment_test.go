package segment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i*7))))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, validLen, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if validLen != st.Size() {
		t.Fatalf("validLen = %d, file size = %d", validLen, st.Size())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestWALTornTail truncates the log at every byte boundary inside the
// last record and checks the reader recovers exactly the full-record
// prefix — the core crash-recovery contract.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma-gamma-gamma")}
	var bounds []int64 // cumulative frame-end offsets
	off := int64(0)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		off += int64(walFrameHeader + len(r))
		bounds = append(bounds, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		p := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, validLen, err := ReadWAL(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantN := 0
		wantLen := int64(0)
		for i, b := range bounds {
			if b <= cut {
				wantN = i + 1
				wantLen = b
			}
		}
		if len(got) != wantN || validLen != wantLen {
			t.Fatalf("cut %d: got %d records validLen %d, want %d records validLen %d",
				cut, len(got), validLen, wantN, wantLen)
		}
	}
}

// TestWALCorruptRecord flips a byte inside a middle record's payload: the
// reader must stop at the corrupt record, keeping only the prefix.
func TestWALCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := CreateWAL(path)
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	// Corrupt the second record's payload (first record is 8+9 bytes).
	raw[walFrameHeader+9+walFrameHeader+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, validLen, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "payload-0" {
		t.Fatalf("got %d records after corruption, want 1", len(got))
	}
	if validLen != walFrameHeader+9 {
		t.Fatalf("validLen = %d", validLen)
	}
}

func TestWALOpenAppendTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := CreateWAL(path)
	if err := w.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn tail: append garbage bytes directly.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{1, 2, 3})
	f.Close()
	_, validLen, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWALAppend(path, validLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "keep" || string(recs[1]) != "after" {
		t.Fatalf("recs = %q", recs)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-1.seg")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var payloads, metas [][]byte
	for i := 0; i < 10; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 100+i*37)
		m := []byte(fmt.Sprintf("meta-%d", i))
		payloads, metas = append(payloads, p), append(metas, m)
		idx, err := w.Append(p, m)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("block index %d, want %d", idx, i)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumBlocks() != 10 {
		t.Fatalf("blocks = %d", s.NumBlocks())
	}
	for i := range payloads {
		if !bytes.Equal(s.Blocks[i].Meta, metas[i]) {
			t.Fatalf("block %d meta mismatch", i)
		}
		got, err := s.ReadBlock(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("block %d payload mismatch", i)
		}
	}
}

// TestSegmentAtomicVisibility: an unfinished writer leaves only a .tmp
// file; the final name never exists until Finish completes.
func TestSegmentAtomicVisibility(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-2.seg")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("data"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("final path exists before Finish")
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatal("tmp path missing mid-write")
	}
	w.Abort()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp path survives Abort")
	}
}

func TestSegmentDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-3.seg")
	w, _ := NewWriter(path)
	if _, err := w.Append(bytes.Repeat([]byte{7}, 500), []byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	// Truncated file: Open must fail.
	raw, _ := os.ReadFile(path)
	trunc := filepath.Join(dir, "trunc.seg")
	os.WriteFile(trunc, raw[:len(raw)-10], 0o644)
	if _, err := Open(trunc); err == nil {
		t.Fatal("Open accepted truncated segment")
	}

	// Flipped payload byte: Open succeeds (footer intact), ReadBlock fails.
	bad := append([]byte(nil), raw...)
	bad[segHeaderLen+17] ^= 0xff
	badPath := filepath.Join(dir, "bad.seg")
	os.WriteFile(badPath, bad, 0o644)
	s, err := Open(badPath)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ReadBlock(0); err == nil {
		t.Fatal("ReadBlock accepted corrupt payload")
	}
}

func TestPageCacheHitMissEvict(t *testing.T) {
	c := NewPageCache(1000, 1) // one shard: deterministic budget
	k := func(i int) PageKey { return PageKey{File: 1, Block: uint32(i)} }
	for i := 0; i < 5; i++ {
		c.Put(k(i), i, 200)
	}
	st := c.Snapshot()
	if st.Entries != 5 || st.Bytes != 1000 {
		t.Fatalf("after fill: %+v", st)
	}
	if v, ok := c.Get(k(0)); !ok || v.(int) != 0 {
		t.Fatal("miss on resident block")
	}
	// Inserting one more 200-byte page must evict exactly one victim.
	c.Put(k(5), 5, 200)
	st = c.Snapshot()
	if st.Entries != 5 || st.Bytes != 1000 || st.Evictions != 1 {
		t.Fatalf("after evict: %+v", st)
	}
	// Oversized values are refused.
	c.Put(PageKey{File: 2}, "big", 2000)
	if _, ok := c.Get(PageKey{File: 2}); ok {
		t.Fatal("cached an oversized value")
	}
}

// TestPageCacheSecondChance: a hot entry (reference bit repeatedly set by
// Gets) survives eviction pressure that cycles cold entries through.
func TestPageCacheSecondChance(t *testing.T) {
	c := NewPageCache(400, 1)
	hot := PageKey{File: 9, Block: 9}
	c.Put(hot, "hot", 100)
	for i := 0; i < 50; i++ {
		c.Get(hot) // keep the reference bit set
		c.Put(PageKey{File: 1, Block: uint32(i)}, i, 100)
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot entry evicted despite constant hits")
	}
}

func TestPageCacheDropFile(t *testing.T) {
	c := NewPageCache(1<<20, 4)
	for i := 0; i < 20; i++ {
		c.Put(PageKey{File: uint64(i % 2), Block: uint32(i)}, i, 10)
	}
	c.DropFile(0)
	for i := 0; i < 20; i++ {
		_, ok := c.Get(PageKey{File: uint64(i % 2), Block: uint32(i)})
		if want := i%2 == 1; ok != want {
			t.Fatalf("block %d resident=%v, want %v", i, ok, want)
		}
	}
}

func TestPageCacheDisabled(t *testing.T) {
	c := NewPageCache(0, 4)
	c.Put(PageKey{File: 1}, "x", 1)
	if _, ok := c.Get(PageKey{File: 1}); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestPageCacheConcurrent(t *testing.T) {
	c := NewPageCache(1<<16, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := PageKey{File: uint64(g % 3), Block: uint32(i % 97)}
				if v, ok := c.Get(k); ok {
					if v.(uint32) != k.Block {
						t.Errorf("wrong value for %+v", k)
						return
					}
				} else {
					c.Put(k, k.Block, 64)
				}
			}
		}(g)
	}
	wg.Wait()
}
