// Package segment holds minidb's disk-storage primitives: a framed
// write-ahead log, immutable block-structured segment files, and a
// sharded byte-budgeted page cache. The package is deliberately
// value-agnostic — records, block payloads, and block metadata are
// opaque byte slices, and cached pages are opaque interface values — so
// it has no dependency on minidb's Value types and can be tested in
// isolation with synthetic payloads.
package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// WAL record framing: every record is [u32 payload len][u32 crc32(payload)]
// [payload]. A reader stops at the first frame whose length field is
// implausible, whose payload is short (torn tail), or whose CRC mismatches
// (partial in-place write) — everything before that point is the committed
// prefix, everything after is discarded by recovery.
const (
	walFrameHeader = 8
	// maxRecordLen bounds a single record; a length field above it is
	// treated as tail corruption rather than attempted as an allocation.
	maxRecordLen = 1 << 30
)

// WAL is an append-only log file with buffered writes. Append and Flush
// serialize on an internal mutex; Sync (fsync) intentionally does not
// take it, so a group-commit leader can flush the buffer, release the
// mutex, and fsync while new appends continue to buffer behind it.
// Group-commit sequencing (who fsyncs, who waits) is the caller's job —
// the WAL only promises that after Flush+Sync return, every previously
// appended record is durable.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	size int64 // bytes appended (including buffered)

	fsyncs atomic.Int64
	frame  [walFrameHeader]byte
}

// CreateWAL creates a new empty log at path, failing if it exists.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// OpenWALAppend opens an existing log for appending, first truncating it
// to size — the committed-prefix length ReadWAL reported — so a torn tail
// is physically removed before new records land after it.
func OpenWALAppend(path string, size int64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, w: bufio.NewWriterSize(f, 1<<16), size: size}, nil
}

// Append buffers one framed record. It is safe for concurrent use, but
// callers that need a meaningful commit order must serialize appends
// themselves (minidb appends under its database write lock, so record
// order equals apply order).
func (w *WAL) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("segment: record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	binary.LittleEndian.PutUint32(w.frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(w.frame[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.size += int64(walFrameHeader + len(payload))
	return nil
}

// Flush pushes buffered records to the OS. Durability still requires Sync.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// Sync fsyncs the file. Callers must Flush first; the two are split so a
// group-commit leader holds the append mutex only for the memory copy,
// never across the disk wait.
func (w *WAL) Sync() error {
	w.fsyncs.Add(1)
	return w.f.Sync()
}

// Fsyncs reports how many fsyncs this log has issued — the denominator of
// the group-commit amortization measurement.
func (w *WAL) Fsyncs() int64 { return w.fsyncs.Load() }

// Size returns the log length in bytes, counting buffered appends.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close flushes, fsyncs, and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	err := w.w.Flush()
	w.mu.Unlock()
	if err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadWAL reads every complete, checksum-valid record from the log and
// returns them with the byte length of that committed prefix. A torn or
// corrupt tail is not an error — the prefix before it is the recoverable
// state, and validLen tells the caller where to truncate before appending.
func ReadWAL(path string) (records [][]byte, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [walFrameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return records, off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordLen {
			return records, off, nil // implausible length: corrupt tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return records, off, nil // corrupted record
		}
		records = append(records, payload)
		off += int64(walFrameHeader) + int64(n)
	}
}
