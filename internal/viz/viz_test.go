package viz

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("gflops per execution", []string{"100", "101"}, []float64{2.0, 4.0}, 20)
	if !strings.Contains(out, "gflops per execution") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The max value fills the width; the half value is about half.
	full := strings.Count(lines[2], "#")
	half := strings.Count(lines[1], "#")
	if full != 20 {
		t.Errorf("max bar = %d chars, want 20", full)
	}
	if half < 8 || half > 12 {
		t.Errorf("half bar = %d chars", half)
	}
	if !strings.Contains(lines[1], "100") || !strings.Contains(lines[1], "2") {
		t.Errorf("label/value missing: %q", lines[1])
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := BarChart("t", nil, nil, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
	out := BarChart("", []string{"a"}, []float64{0}, 10)
	if strings.Count(out, "#") != 0 {
		t.Errorf("zero value drew a bar: %q", out)
	}
}

func TestLineChart(t *testing.T) {
	series := []Series{
		{Name: "Non-Optimized", Points: map[float64]float64{2: 1000, 64: 40000, 124: 75000}},
		{Name: "Optimized", Points: map[float64]float64{2: 700, 64: 20000, 124: 36000}},
	}
	out := LineChart("Scalability", series, 10, 40)
	if !strings.Contains(out, "Scalability") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* = Non-Optimized") || !strings.Contains(out, "o = Optimized") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing data glyphs")
	}
	// Axis labels.
	if !strings.Contains(out, "124") {
		t.Errorf("missing x max:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	if out := LineChart("t", nil, 5, 20); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	out := LineChart("", []Series{{Name: "s", Points: map[float64]float64{5: 10}}}, 5, 20)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table("Table 4: Overhead",
		[]string{"Source", "Mean (ms)", "Overhead %"},
		[][]string{
			{"HPL", "112.85", "28%"},
			{"RMA", "358.49", "71%"},
		})
	if !strings.Contains(out, "Table 4: Overhead") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header and rule.
	if !strings.HasPrefix(lines[1], "Source") {
		t.Errorf("header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule: %q", lines[2])
	}
	// Columns align: "Mean (ms)" starts at the same offset in all rows.
	off := strings.Index(lines[1], "Mean")
	if strings.Index(lines[3], "112.85") != off {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	out := Table("", []string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Errorf("short row dropped: %q", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	if out := Table("t", nil, nil); out != "t\n" {
		t.Errorf("got %q", out)
	}
}
