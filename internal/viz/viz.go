// Package viz renders performance data as terminal charts — the ASCII
// stand-in for the JFreeChart visualization panel of the paper's client
// (Figure 11).
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// BarChart renders one bar per labeled value, scaled to width characters.
// It is the shape of Figure 11: one metric value per Execution in a query.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	if len(labels) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxVal := 0.0
	labelW := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, v := range values {
		bar := 0
		if maxVal > 0 && v > 0 {
			bar = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g\n", labelW, labels[i], strings.Repeat("#", bar), v)
	}
	return b.String()
}

// Series is one named line of (x, y) points for a multi-series chart.
type Series struct {
	Name   string
	Points map[float64]float64
}

// LineChart renders multiple series over a shared x axis as a rows×width
// character grid — the shape of the paper's Figure 12 scalability plot.
// Each series is drawn with its own glyph; overlapping points show the
// later series' glyph.
func LineChart(title string, series []Series, rows, width int) string {
	if rows <= 0 {
		rows = 16
	}
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	// Collect axis ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range series {
		for x, y := range s.Points {
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == 0 {
		maxY = 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '@', '%'}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		xs := make([]float64, 0, len(s.Points))
		for x := range s.Points {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		for _, x := range xs {
			y := s.Points[x]
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := rows - 1 - int(y/maxY*float64(rows-1))
			if row < 0 {
				row = 0
			}
			if row >= rows {
				row = rows - 1
			}
			grid[row][col] = g
		}
	}
	yLabelW := len(fmt.Sprintf("%.4g", maxY))
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", maxY)
		case rows - 1:
			label = "0"
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, label, string(line))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*.4g%*.4g\n", yLabelW, "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Table renders rows with aligned columns, a header rule, and a title —
// the renderer every experiment report uses for the paper's tables.
func Table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	if len(header) == 0 {
		return b.String()
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(widths)-1 {
				// No padding on the final column: keep lines free of
				// trailing whitespace.
				b.WriteString(cell)
			} else {
				fmt.Fprintf(&b, "%-*s", w, cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
