package viz_test

import (
	"fmt"

	"pperfgrid/internal/viz"
)

func ExampleBarChart() {
	fmt.Print(viz.BarChart("gflops per execution",
		[]string{"100", "101"},
		[]float64{2.0, 4.0}, 20))
	// Output:
	// gflops per execution
	// 100 | ########## 2
	// 101 | #################### 4
}

func ExampleTable() {
	fmt.Print(viz.Table("PPerfGrid Caching",
		[]string{"Source", "Speedup"},
		[][]string{{"HPL", "1.96"}, {"SMG98", "137.54"}}))
	// Output:
	// PPerfGrid Caching
	// Source  Speedup
	// ---------------
	// HPL     1.96
	// SMG98   137.54
}
