package core

// Differential write-oracle suite for the live write path (publishPR):
// after ANY interleaving of writes and reads — fixed adversarial
// schedules and a seeded randomized interleaver — every getPR answer
// from the live, cached, incrementally-updated service must be
// byte-identical to a service over a store rebuilt from scratch with the
// final dataset. The comparison covers all read paths (decoded results,
// the raw cached-envelope path, the paged protocol) and all three store
// shapes of the paper (star, wide table, flat file) plus the memory
// reference, so incremental index maintenance, cache-epoch
// invalidation, and envelope freshness are all pinned against the same
// rebuild-from-scratch ground truth.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// copyDataset deep-copies a generated dataset so live writes and oracle
// rebuilds never share mutable state.
func copyDataset(d *datagen.Dataset) *datagen.Dataset {
	out := &datagen.Dataset{Name: d.Name, Meta: append([]perfdata.KV(nil), d.Meta...)}
	for _, e := range d.Execs {
		attrs := make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			attrs[k] = v
		}
		out.Execs = append(out.Execs, datagen.Execution{
			ID: e.ID, Attrs: attrs, Time: e.Time,
			Results: append([]perfdata.Result(nil), e.Results...),
		})
	}
	return out
}

// writeShape is one store shape under write-path test: a base dataset,
// a builder, an ordered pool of publishable results (each valid exactly
// once — the wide table's one-cell-per-metric semantics forbid reuse),
// and a query pool that collectively observes the base data and every
// write.
type writeShape struct {
	name    string
	base    *datagen.Dataset
	execID  string
	build   func(d *datagen.Dataset) (mapping.ApplicationWrapper, error)
	writes  []perfdata.Result
	queries []perfdata.Query
}

// wideWritableDataset is a hand-built wide-table dataset with NULL metric
// cells: execution 100 starts with only gflops, so the other metric
// columns (present via execution 101) are publishable exactly once.
func wideWritableDataset() *datagen.Dataset {
	t100 := perfdata.TimeRange{Start: 0, End: 10}
	t101 := perfdata.TimeRange{Start: 0, End: 12}
	return &datagen.Dataset{
		Name: "HPLW",
		Meta: []perfdata.KV{{Name: "name", Value: "HPLW"}},
		Execs: []datagen.Execution{
			{
				ID:    "100",
				Attrs: map[string]string{"numprocesses": "4", "machine": "mcnary"},
				Time:  t100,
				Results: []perfdata.Result{
					{Metric: "gflops", Focus: "/", Type: "hpl", Time: t100, Value: 3.5},
				},
			},
			{
				ID:    "101",
				Attrs: map[string]string{"numprocesses": "8", "machine": "mcnary"},
				Time:  t101,
				Results: []perfdata.Result{
					{Metric: "gflops", Focus: "/", Type: "hpl", Time: t101, Value: 6.75},
					{Metric: "runtimesec", Focus: "/", Type: "hpl", Time: t101, Value: 812.5},
					{Metric: "residual", Focus: "/", Type: "hpl", Time: t101, Value: 2e-12},
					{Metric: "iotime", Focus: "/", Type: "hpl", Time: t101, Value: 4.25},
				},
			},
		},
	}
}

func writeShapes(t *testing.T) []writeShape {
	t.Helper()
	smg := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 4, Seed: 7})
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 6, Seed: 8})
	wide := wideWritableDataset()
	smgTime := smg.Execs[0].Time
	rmaTime := rma.Execs[0].Time
	w100Time := wide.Execs[0].Time

	flatWrites := []perfdata.Result{
		{Metric: "bandwidth", Focus: "/Comm/put/msgsize/1048576", Type: "presta", Time: perfdata.TimeRange{Start: 250, End: 260}, Value: 238.5},
		{Metric: "latency", Focus: "/Comm/put/msgsize/1048576", Type: "presta", Time: perfdata.TimeRange{Start: 250, End: 260}, Value: 5832.25},
		{Metric: "bandwidth", Focus: "/Comm/get/msgsize/1048576", Type: "presta", Time: perfdata.TimeRange{Start: 260, End: 270}, Value: 229.25},
		{Metric: "jitter", Focus: "/Comm/put/msgsize/8", Type: "presta2", Time: perfdata.TimeRange{Start: 10, End: 20}, Value: 0.125},
		{Metric: "bandwidth", Focus: "/Comm/put/msgsize/2097152", Type: "presta", Time: perfdata.TimeRange{Start: 270, End: 280}, Value: 239.875},
	}
	flatQueries := []perfdata.Query{
		{Metric: "bandwidth", Time: rmaTime, Type: perfdata.UndefinedType},
		{Metric: "bandwidth", Foci: []string{"/Comm/put"}, Time: rmaTime, Type: perfdata.UndefinedType},
		{Metric: "jitter", Time: rmaTime, Type: perfdata.UndefinedType},
		{Metric: "latency", Foci: []string{"/Comm/put/msgsize/1048576"}, Time: perfdata.TimeRange{Start: 200, End: 300}, Type: perfdata.UndefinedType},
	}

	return []writeShape{
		{
			name:   "SMG98-star",
			base:   smg,
			execID: smg.Execs[0].ID,
			build: func(d *datagen.Dataset) (mapping.ApplicationWrapper, error) {
				return mapping.NewStar(d)
			},
			writes: []perfdata.Result{
				// Existing dimensions: pure fact-table append.
				{Metric: "func_calls", Focus: "/Process/0/Code/MPI/MPI_Send", Type: "vampir", Time: perfdata.TimeRange{Start: 1, End: 2}, Value: 41},
				// New focus: dimension interning on the live path must
				// assign the same ID the from-scratch load does.
				{Metric: "func_calls", Focus: "/Process/7/Code/MPI/MPI_Send", Type: "vampir", Time: perfdata.TimeRange{Start: 2, End: 3}, Value: 13},
				// New metric AND new collector type in one result.
				{Metric: "watts", Focus: "/Process/0", Type: "powertool", Time: perfdata.TimeRange{Start: 0, End: 5}, Value: 99.5},
				{Metric: "excl_time", Focus: "/Process/1/Code/MPI/MPI_Recv", Type: "vampir", Time: perfdata.TimeRange{Start: 3, End: 4}, Value: 0.25},
				{Metric: "func_calls", Focus: "/Process/7/Code/MPI/MPI_Send", Type: "vampir", Time: perfdata.TimeRange{Start: 4, End: 5}, Value: 8},
			},
			queries: []perfdata.Query{
				{Metric: "func_calls", Time: smgTime, Type: perfdata.UndefinedType},
				{Metric: "func_calls", Foci: []string{"/Process/7"}, Time: smgTime, Type: perfdata.UndefinedType},
				{Metric: "watts", Time: smgTime, Type: perfdata.UndefinedType},
				{Metric: "excl_time", Foci: []string{"/Process/1"}, Time: smgTime, Type: perfdata.UndefinedType},
			},
		},
		{
			name:   "HPL-wide",
			base:   wide,
			execID: "100",
			build: func(d *datagen.Dataset) (mapping.ApplicationWrapper, error) {
				return mapping.NewWideTable(d)
			},
			writes: []perfdata.Result{
				{Metric: "runtimesec", Focus: "/", Type: "hpl", Time: w100Time, Value: 655.25},
				{Metric: "residual", Focus: "/", Type: "hpl", Time: w100Time, Value: 3e-12},
				{Metric: "iotime", Focus: "", Type: "hpl", Time: w100Time, Value: 1.5},
			},
			queries: []perfdata.Query{
				{Metric: "gflops", Time: w100Time, Type: perfdata.UndefinedType},
				{Metric: "runtimesec", Time: w100Time, Type: perfdata.UndefinedType},
				{Metric: "residual", Time: w100Time, Type: perfdata.UndefinedType},
				{Metric: "iotime", Time: w100Time, Type: perfdata.UndefinedType},
			},
		},
		{
			name:   "RMA-flat",
			base:   rma,
			execID: rma.Execs[0].ID,
			build: func(d *datagen.Dataset) (mapping.ApplicationWrapper, error) {
				return mapping.NewFlatFile(d)
			},
			writes:  flatWrites,
			queries: flatQueries,
		},
		{
			name:   "RMA-memory",
			base:   rma,
			execID: rma.Execs[0].ID,
			build: func(d *datagen.Dataset) (mapping.ApplicationWrapper, error) {
				return mapping.NewMemory(d), nil
			},
			writes:  flatWrites,
			queries: flatQueries,
		},
	}
}

// newLiveService builds the live, cached service under test for a shape.
func newLiveService(t *testing.T, shape writeShape) *ExecutionService {
	t.Helper()
	w, err := shape.build(copyDataset(shape.base))
	if err != nil {
		t.Fatal(err)
	}
	ew, err := w.ExecutionWrapper(shape.execID)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCacheFromConfig(CacheConfig{Policy: "cost"})
	return NewExecutionService(shape.execID, ew, cache, nil)
}

// buildOracle rebuilds the shape's store from scratch with the given
// writes already part of the dataset, and returns an uncached service
// over it — the ground truth every live read is compared against.
func buildOracle(t *testing.T, shape writeShape, writes []perfdata.Result) *ExecutionService {
	t.Helper()
	d := copyDataset(shape.base)
	for i := range d.Execs {
		if d.Execs[i].ID == shape.execID {
			d.Execs[i].Results = append(d.Execs[i].Results, writes...)
		}
	}
	w, err := shape.build(d)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := w.ExecutionWrapper(shape.execID)
	if err != nil {
		t.Fatal(err)
	}
	return NewExecutionService(shape.execID, ew, nil, nil)
}

// encodeJoined renders a result set in canonical wire form for equality
// checks (nil and empty both render empty).
func encodeJoined(rs []perfdata.Result) string {
	return strings.Join(perfdata.EncodeResults(rs), "\n")
}

// checkRead compares every read path of the live service against the
// rebuild-from-scratch oracle for one query: the decoded result set, the
// raw wire envelope (twice — the second must come from the cached
// envelope with zero additional encodes), and the paged protocol.
func checkRead(t *testing.T, live, oracle *ExecutionService, q perfdata.Query, ctx string) {
	t.Helper()
	wantRs, err := oracle.PerformanceResults(q)
	if err != nil {
		t.Fatalf("%s: oracle query %q: %v", ctx, q.Key(), err)
	}
	want := encodeJoined(wantRs)

	gotRs, err := live.PerformanceResults(q)
	if err != nil {
		t.Fatalf("%s: live query %q: %v", ctx, q.Key(), err)
	}
	if got := encodeJoined(gotRs); got != want {
		t.Fatalf("%s: query %q diverges from rebuilt store:\nlive   (%d results)\noracle (%d results)\nlive:\n%s\noracle:\n%s",
			ctx, q.Key(), len(gotRs), len(wantRs), got, want)
	}

	wantEnv, err := soap.EncodeResponse(OpGetPR, nil, perfdata.EncodeResults(wantRs))
	if err != nil {
		t.Fatal(err)
	}
	raw, handled, err := live.InvokeRaw(OpGetPR, q.WireParams())
	if err != nil || !handled {
		t.Fatalf("%s: InvokeRaw %q: handled=%v err=%v", ctx, q.Key(), handled, err)
	}
	if !bytes.Equal(raw, wantEnv) {
		t.Fatalf("%s: wire envelope for %q is stale or diverges (%d bytes, oracle %d bytes)", ctx, q.Key(), len(raw), len(wantEnv))
	}
	before := live.WireEncodes()
	raw2, handled, err := live.InvokeRaw(OpGetPR, q.WireParams())
	if err != nil || !handled {
		t.Fatalf("%s: repeat InvokeRaw %q: handled=%v err=%v", ctx, q.Key(), handled, err)
	}
	if !bytes.Equal(raw2, wantEnv) {
		t.Fatalf("%s: cached envelope for %q is stale", ctx, q.Key())
	}
	if live.WireEncodes() != before {
		t.Fatalf("%s: repeat raw read of %q re-encoded the envelope instead of serving the cached bytes", ctx, q.Key())
	}

	var paged []string
	page, next, err := live.InvokePaged(OpGetPR, q.WireParams(), "", 3)
	for {
		if err != nil {
			t.Fatalf("%s: paged read %q: %v", ctx, q.Key(), err)
		}
		paged = append(paged, page...)
		if next == "" {
			break
		}
		page, next, err = live.InvokePaged(OpGetPR, q.WireParams(), next, 3)
	}
	if got := strings.Join(paged, "\n"); got != want {
		t.Fatalf("%s: paged read of %q diverges from rebuilt store", ctx, q.Key())
	}
}

// publishBatch applies one write batch through either the in-process API
// or the full publishPR wire operation.
func publishBatch(t *testing.T, svc *ExecutionService, rs []perfdata.Result, overWire bool, ctx string) {
	t.Helper()
	if overWire {
		out, err := svc.Invoke(OpPublishPR, perfdata.EncodeResults(rs))
		if err != nil {
			t.Fatalf("%s: publishPR: %v", ctx, err)
		}
		if len(out) != 1 || out[0] != strconv.Itoa(len(rs)) {
			t.Fatalf("%s: publishPR returned %v, want [%d]", ctx, out, len(rs))
		}
		return
	}
	if err := svc.PublishResults(rs); err != nil {
		t.Fatalf("%s: PublishResults: %v", ctx, err)
	}
}

// TestWriteOracleFixedSchedules runs hand-picked adversarial schedules —
// the stale-envelope trap (read, cache, write, re-read), back-to-back
// writes with no read between, and publishes over the wire operation —
// on every store shape, checking each read against the rebuilt oracle.
func TestWriteOracleFixedSchedules(t *testing.T) {
	for _, shape := range writeShapes(t) {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			live := newLiveService(t, shape)
			oracle := buildOracle(t, shape, nil)

			// Warm every query twice: the second pass is served from the
			// cache, so the envelopes about to be invalidated are real.
			for pass := 0; pass < 2; pass++ {
				for _, q := range shape.queries {
					checkRead(t, live, oracle, q, fmt.Sprintf("pre-write pass %d", pass))
				}
			}
			if live.Epoch() != 0 || live.Publishes() != 0 {
				t.Fatalf("reads moved the epoch: epoch=%d publishes=%d", live.Epoch(), live.Publishes())
			}

			// The stale-envelope trap: one write, then every cached query
			// must answer with post-write bytes.
			publishBatch(t, live, shape.writes[:1], false, "write 1")
			oracle = buildOracle(t, shape, shape.writes[:1])
			for pass := 0; pass < 2; pass++ {
				for _, q := range shape.queries {
					checkRead(t, live, oracle, q, fmt.Sprintf("after write 1 pass %d", pass))
				}
			}

			// Back-to-back writes (one per result, no reads between), over
			// the wire operation, then re-verify everything.
			for i, w := range shape.writes[1:] {
				publishBatch(t, live, []perfdata.Result{w}, true, fmt.Sprintf("write %d", i+2))
			}
			oracle = buildOracle(t, shape, shape.writes)
			for pass := 0; pass < 2; pass++ {
				for _, q := range shape.queries {
					checkRead(t, live, oracle, q, fmt.Sprintf("final pass %d", pass))
				}
			}

			wantPublishes := int64(len(shape.writes))
			if live.Publishes() != wantPublishes || live.Epoch() != wantPublishes {
				t.Fatalf("counters: publishes=%d epoch=%d, want both %d", live.Publishes(), live.Epoch(), wantPublishes)
			}

			// An empty publish is a no-op: no store touch, no epoch bump.
			publishBatch(t, live, nil, false, "empty write")
			if live.Epoch() != wantPublishes {
				t.Fatalf("empty publish bumped the epoch to %d", live.Epoch())
			}
		})
	}
}

// TestWriteOracleRandomizedInterleaving is the seeded fuzz interleaver:
// random read/write schedules per shape, every read checked on all
// paths against the rebuilt oracle. Schedules are fully determined by
// the seed — a failure message names the seed and op index, and re-
// running the test replays the identical schedule.
func TestWriteOracleRandomizedInterleaving(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, shape := range writeShapes(t) {
			shape := shape
			t.Run(fmt.Sprintf("%s/seed=%d", shape.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				live := newLiveService(t, shape)
				oracle := buildOracle(t, shape, nil)
				applied := 0
				const ops = 40
				for op := 0; op < ops; op++ {
					ctx := fmt.Sprintf("seed=%d op=%d (deterministic: re-run replays this schedule)", seed, op)
					if applied < len(shape.writes) && rng.Float64() < 0.3 {
						n := 1
						if applied+1 < len(shape.writes) && rng.Float64() < 0.4 {
							n = 2
						}
						publishBatch(t, live, shape.writes[applied:applied+n], rng.Float64() < 0.5, ctx)
						applied += n
						oracle = buildOracle(t, shape, shape.writes[:applied])
						continue
					}
					q := shape.queries[rng.Intn(len(shape.queries))]
					checkRead(t, live, oracle, q, ctx)
				}
				// Drain the write pool and verify the final state once more.
				if applied < len(shape.writes) {
					publishBatch(t, live, shape.writes[applied:], false, "drain")
					oracle = buildOracle(t, shape, shape.writes)
				}
				for _, q := range shape.queries {
					checkRead(t, live, oracle, q, fmt.Sprintf("seed=%d final", seed))
				}
			})
		}
	}
}

// TestWritePathCursorSnapshot pins the documented paging semantics
// across writes: a cursor opened before a publish keeps serving its
// point-in-time snapshot (unlike NotifyUpdate, which expires cursors),
// while a page sequence opened after the publish sees the new data.
func TestWritePathCursorSnapshot(t *testing.T) {
	shape := writeShapes(t)[0] // star
	live := newLiveService(t, shape)
	q := shape.queries[0]
	preOracle := buildOracle(t, shape, nil)
	preRs, err := preOracle.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}

	limit := len(preRs)/2 + 1
	var got []string
	page, next, err := live.InvokePaged(OpGetPR, q.WireParams(), "", limit)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, page...)
	if next == "" {
		t.Fatalf("result set of %d rows did not page at limit %d", len(preRs), limit)
	}

	publishBatch(t, live, shape.writes, false, "mid-cursor write")

	for next != "" {
		page, next, err = live.InvokePaged(OpGetPR, q.WireParams(), next, limit)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
	}
	if strings.Join(got, "\n") != encodeJoined(preRs) {
		t.Fatal("pre-write cursor did not serve its point-in-time snapshot")
	}

	// A fresh page sequence observes the write.
	postOracle := buildOracle(t, shape, shape.writes)
	checkRead(t, live, postOracle, q, "post-write paging")
}
