package core

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"

	"pperfgrid/internal/container"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
)

// ExecutionFactoryRef abstracts one replica host's Execution factory: the
// Manager uses it to create Execution service instances for unique IDs.
// Local (same-process) and remote (SOAP) adapters are provided.
type ExecutionFactoryRef interface {
	// CreateExecution instantiates an Execution service for the ID and
	// returns its GSH string.
	CreateExecution(execID string) (string, error)
	// Host names the replica, for fairness accounting and reports.
	Host() string
}

// LocalFactoryRef adapts an in-process ogsi.Factory.
type LocalFactoryRef struct {
	Factory *ogsi.Factory
	HostID  string
}

// CreateExecution implements ExecutionFactoryRef.
func (l *LocalFactoryRef) CreateExecution(execID string) (string, error) {
	in, err := l.Factory.Create([]string{execID})
	if err != nil {
		return "", err
	}
	return in.Handle().String(), nil
}

// Host implements ExecutionFactoryRef.
func (l *LocalFactoryRef) Host() string { return l.HostID }

// RemoteFactoryRef adapts an Execution factory on another host, reached
// through its SOAP stub — the Manager "accessing the Execution Grid
// service factory as a client" (section 5.3.1.4).
type RemoteFactoryRef struct {
	Stub *container.Stub
}

// NewRemoteFactoryRef dials the ExecutionFactory on a host.
func NewRemoteFactoryRef(host string) *RemoteFactoryRef {
	return &RemoteFactoryRef{Stub: container.Dial(gsh.Persistent(host, ExecutionType+"Factory"))}
}

// CreateExecution implements ExecutionFactoryRef.
func (r *RemoteFactoryRef) CreateExecution(execID string) (string, error) {
	out, err := r.Stub.Call(ogsi.OpCreateService, execID)
	if err != nil {
		return "", err
	}
	if len(out) != 1 {
		return "", fmt.Errorf("core: CreateService returned %d values", len(out))
	}
	return out[0], nil
}

// Host implements ExecutionFactoryRef.
func (r *RemoteFactoryRef) Host() string { return r.Stub.Handle().Host }

// ReplicaPolicy decides which replica host instantiates each uncached
// execution in a batch. ids are the uncached execution IDs in request
// order; the result assigns each a replica index in [0, replicas).
type ReplicaPolicy interface {
	Name() string
	Assign(ids []string, replicas int) []int
}

// InterleavePolicy is the paper's policy: round-robin interleaving (ID 1
// on host A, ID 2 on host B, ...) "to ensure as much fairness as possible
// for future requests".
type InterleavePolicy struct{}

// Name implements ReplicaPolicy.
func (InterleavePolicy) Name() string { return "interleave" }

// Assign implements ReplicaPolicy.
func (InterleavePolicy) Assign(ids []string, replicas int) []int {
	out := make([]int, len(ids))
	for i := range ids {
		out[i] = i % replicas
	}
	return out
}

// BlockPolicy assigns contiguous blocks of the batch to each replica —
// the natural alternative the ablation benchmarks compare against.
type BlockPolicy struct{}

// Name implements ReplicaPolicy.
func (BlockPolicy) Name() string { return "block" }

// Assign implements ReplicaPolicy.
func (BlockPolicy) Assign(ids []string, replicas int) []int {
	out := make([]int, len(ids))
	for i := range ids {
		out[i] = i * replicas / len(ids)
	}
	return out
}

// HashPolicy assigns each ID by hash, giving a stable placement that is
// independent of batch composition.
type HashPolicy struct{}

// Name implements ReplicaPolicy.
func (HashPolicy) Name() string { return "hash" }

// Assign implements ReplicaPolicy.
func (HashPolicy) Assign(ids []string, replicas int) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		h := fnv.New32a()
		h.Write([]byte(id))
		out[i] = int(h.Sum32() % uint32(replicas))
	}
	return out
}

// Manager is the PPerfGrid Manager (section 5.3.1.4): a non-transient,
// internal grid service that caches Execution service instances. Creation
// of a grid service instance is relatively expensive, so instances are
// created only on first reference; the GSH of a previously created
// instance is returned from the hash table thereafter. When the data
// source is replicated on multiple hosts, the Manager distributes
// instantiations across them under its ReplicaPolicy.
type Manager struct {
	policy ReplicaPolicy

	mu        sync.Mutex
	factories []ExecutionFactoryRef
	cache     map[string]string // execution ID -> GSH
	perHost   map[string]int    // replica host -> instances created
}

// NewManager builds a Manager over the given replica factories. A nil
// policy defaults to the paper's interleaving.
func NewManager(policy ReplicaPolicy, factories ...ExecutionFactoryRef) (*Manager, error) {
	if len(factories) == 0 {
		return nil, fmt.Errorf("core: manager needs at least one execution factory")
	}
	if policy == nil {
		policy = InterleavePolicy{}
	}
	return &Manager{
		policy:    policy,
		factories: factories,
		cache:     make(map[string]string),
		perHost:   make(map[string]int),
	}, nil
}

// ExecutionHandles returns one GSH per execution ID, creating instances
// for IDs seen for the first time and serving the rest from the cache.
func (m *Manager) ExecutionHandles(ids []string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	out := make([]string, len(ids))
	var missing []string
	var missingAt []int
	for i, id := range ids {
		if h, ok := m.cache[id]; ok {
			out[i] = h
		} else {
			missing = append(missing, id)
			missingAt = append(missingAt, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	assign := m.policy.Assign(missing, len(m.factories))
	for j, id := range missing {
		f := m.factories[assign[j]]
		h, err := f.CreateExecution(id)
		if err != nil {
			return nil, fmt.Errorf("core: create execution %q on %s: %w", id, f.Host(), err)
		}
		m.cache[id] = h
		m.perHost[f.Host()]++
		out[missingAt[j]] = h
	}
	return out, nil
}

// CachedCount returns the number of cached Execution instances.
func (m *Manager) CachedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// PerHostCounts returns a copy of the per-replica creation counts.
func (m *Manager) PerHostCounts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.perHost))
	for k, v := range m.perHost {
		out[k] = v
	}
	return out
}

// Forget drops one cached instance handle, e.g. after its instance is
// destroyed by lifetime management.
func (m *Manager) Forget(execID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cache, execID)
}

// Invoke implements the Manager PortType wire protocol.
func (m *Manager) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case OpGetExecutions:
		return m.ExecutionHandles(params)
	}
	return nil, fmt.Errorf("%w: %q on Manager", ogsi.ErrUnknownOperation, op)
}

// ServiceData publishes Manager statistics.
func (m *Manager) ServiceData() map[string][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	hosts := make([]string, 0, len(m.factories))
	for _, f := range m.factories {
		hosts = append(hosts, f.Host())
	}
	return map[string][]string{
		"policy":       {m.policy.Name()},
		"replicaHosts": hosts,
		"cachedCount":  {strconv.Itoa(len(m.cache))},
		"replicaCount": {strconv.Itoa(len(m.factories))},
	}
}
