package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/ogsi"
)

// ExecutionFactoryRef abstracts one replica host's Execution factory: the
// Manager uses it to create Execution service instances for unique IDs.
// Local (same-process) and remote (SOAP) adapters are provided.
type ExecutionFactoryRef interface {
	// CreateExecution instantiates an Execution service for the ID and
	// returns its GSH string.
	CreateExecution(execID string) (string, error)
	// Host names the replica, for fairness accounting and reports.
	Host() string
}

// BatchFactoryRef is an optional ExecutionFactoryRef extension: one call
// instantiates a whole group of IDs — one SOAP round trip per replica
// instead of one per instance. Refs without it fall back to per-ID
// creation (still grouped and run concurrently across replicas).
type BatchFactoryRef interface {
	ExecutionFactoryRef
	// CreateExecutions instantiates one Execution service per ID and
	// returns their GSH strings in order.
	CreateExecutions(execIDs []string) ([]string, error)
}

// HostLoad snapshots one replica host's load for load-aware policies.
type HostLoad struct {
	// Created counts Execution instances the Manager has placed on the
	// replica (including ones whose creation is still in flight).
	Created int
	// InFlight counts requests currently executing or queued on the host
	// — per-host worker-pool feedback when the ref can see its container.
	InFlight int
	// Queued and Executing split InFlight into its components: requests
	// waiting for a worker slot versus requests holding one. Shedding
	// decisions and ServiceData reporting read the split; InFlight stays
	// the policies' aggregate signal.
	Queued    int
	Executing int
	// LatencyMs is an exponential moving average of recent service time
	// on the host (0 until a sample exists).
	LatencyMs float64
}

// LoadReporter is an optional ExecutionFactoryRef extension exposing live
// host load to the Manager's load-aware policies.
type LoadReporter interface {
	Load() HostLoad
}

// LocalFactoryRef adapts an in-process ogsi.Factory.
type LocalFactoryRef struct {
	Factory *ogsi.Factory
	HostID  string
	// LoadFn, when set, reports the host container's live load (in-flight
	// requests, service-time EWMA) for load-aware replica policies.
	LoadFn func() HostLoad
}

// CreateExecution implements ExecutionFactoryRef.
func (l *LocalFactoryRef) CreateExecution(execID string) (string, error) {
	in, err := l.Factory.Create([]string{execID})
	if err != nil {
		return "", err
	}
	return in.Handle().String(), nil
}

// CreateExecutions implements BatchFactoryRef (in-process, so "one round
// trip" is free — this keeps the local and remote paths symmetric).
func (l *LocalFactoryRef) CreateExecutions(execIDs []string) ([]string, error) {
	ins, err := l.Factory.CreateBatch(execIDs)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = in.Handle().String()
	}
	return out, nil
}

// Host implements ExecutionFactoryRef.
func (l *LocalFactoryRef) Host() string { return l.HostID }

// Load implements LoadReporter.
func (l *LocalFactoryRef) Load() HostLoad {
	if l.LoadFn == nil {
		return HostLoad{}
	}
	return l.LoadFn()
}

// RemoteFactoryRef adapts an Execution factory on another host, reached
// through its SOAP stub — the Manager "accessing the Execution Grid
// service factory as a client" (section 5.3.1.4).
type RemoteFactoryRef struct {
	Stub *container.Stub
}

// NewRemoteFactoryRef dials the ExecutionFactory on a host.
func NewRemoteFactoryRef(host string) *RemoteFactoryRef {
	return &RemoteFactoryRef{Stub: container.Dial(gsh.Persistent(host, ExecutionType+"Factory"))}
}

// CreateExecution implements ExecutionFactoryRef.
func (r *RemoteFactoryRef) CreateExecution(execID string) (string, error) {
	out, err := r.Stub.Call(ogsi.OpCreateService, execID)
	if err != nil {
		return "", err
	}
	if len(out) != 1 {
		return "", fmt.Errorf("core: CreateService returned %d values", len(out))
	}
	return out[0], nil
}

// CreateExecutions implements BatchFactoryRef: the whole group costs one
// SOAP round trip (the factory's plural CreateServices operation).
func (r *RemoteFactoryRef) CreateExecutions(execIDs []string) ([]string, error) {
	out, err := r.Stub.Call(ogsi.OpCreateServices, execIDs...)
	if err != nil {
		return nil, err
	}
	if len(out) != len(execIDs) {
		return nil, fmt.Errorf("core: CreateServices returned %d values for %d IDs", len(out), len(execIDs))
	}
	return out, nil
}

// Host implements ExecutionFactoryRef.
func (r *RemoteFactoryRef) Host() string { return r.Stub.Handle().Host }

// ReplicaPolicy decides which replica host instantiates each uncached
// execution in a batch. ids are the uncached execution IDs in request
// order; the result assigns each a replica index in [0, replicas).
type ReplicaPolicy interface {
	Name() string
	Assign(ids []string, replicas int) []int
}

// LoadAwarePolicy is a ReplicaPolicy that wants live per-replica load.
// The Manager calls AssignLoaded with one HostLoad per replica (index-
// aligned with the factories) instead of Assign.
type LoadAwarePolicy interface {
	ReplicaPolicy
	AssignLoaded(ids []string, loads []HostLoad) []int
}

// InterleavePolicy is the paper's policy: round-robin interleaving (ID 1
// on host A, ID 2 on host B, ...) "to ensure as much fairness as possible
// for future requests".
type InterleavePolicy struct{}

// Name implements ReplicaPolicy.
func (InterleavePolicy) Name() string { return "interleave" }

// Assign implements ReplicaPolicy.
func (InterleavePolicy) Assign(ids []string, replicas int) []int {
	out := make([]int, len(ids))
	for i := range ids {
		out[i] = i % replicas
	}
	return out
}

// BlockPolicy assigns contiguous blocks of the batch to each replica —
// the natural alternative the ablation benchmarks compare against.
type BlockPolicy struct{}

// Name implements ReplicaPolicy.
func (BlockPolicy) Name() string { return "block" }

// Assign implements ReplicaPolicy.
func (BlockPolicy) Assign(ids []string, replicas int) []int {
	out := make([]int, len(ids))
	for i := range ids {
		out[i] = i * replicas / len(ids)
	}
	return out
}

// HashPolicy assigns each ID by hash rank: IDs are ordered by their FNV
// hash and dealt round-robin starting from an offset derived from the
// batch's combined hash. Placement is independent of batch order (the
// same set always lands the same way) and balanced within one even for
// adversarial ID sets — a plain hash-mod placement skews under small
// replica counts. The hash-derived starting offset keeps incremental
// workloads spread out too: a single-ID batch lands on hash(id) mod
// replicas (the classic stable placement), not always on replica 0.
type HashPolicy struct{}

// Name implements ReplicaPolicy.
func (HashPolicy) Name() string { return "hash" }

// Assign implements ReplicaPolicy.
func (HashPolicy) Assign(ids []string, replicas int) []int {
	type ranked struct {
		hash uint32
		idx  int
	}
	rs := make([]ranked, len(ids))
	var combined uint32
	for i, id := range ids {
		h := fnv.New32a()
		h.Write([]byte(id))
		rs[i] = ranked{hash: h.Sum32(), idx: i}
		combined ^= rs[i].hash // XOR: order-independent
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].hash != rs[b].hash {
			return rs[a].hash < rs[b].hash
		}
		return ids[rs[a].idx] < ids[rs[b].idx] // deterministic tie-break
	})
	offset := int(combined % uint32(replicas))
	out := make([]int, len(ids))
	for rank, r := range rs {
		out[r.idx] = (offset + rank) % replicas
	}
	return out
}

// LeastLoadedPolicy assigns each ID greedily to the replica with the
// fewest instances (created + in-flight creations + batch assignments so
// far) — load-aware placement from the Manager's own accounting. Without
// load information it degrades to interleaving.
type LeastLoadedPolicy struct{}

// Name implements ReplicaPolicy.
func (LeastLoadedPolicy) Name() string { return "least-loaded" }

// Assign implements ReplicaPolicy (no load feedback: round-robin).
func (LeastLoadedPolicy) Assign(ids []string, replicas int) []int {
	return InterleavePolicy{}.Assign(ids, replicas)
}

// AssignLoaded implements LoadAwarePolicy.
func (LeastLoadedPolicy) AssignLoaded(ids []string, loads []HostLoad) []int {
	score := make([]float64, len(loads))
	for r, l := range loads {
		score[r] = float64(l.Created + l.InFlight)
	}
	return greedyMin(ids, score, func(r int) float64 { return 1 })
}

// AdaptivePolicy weights each replica's queue depth by its observed
// service latency (container worker-pool feedback): a replica twice as
// slow receives half the new instances. With uniform latencies it behaves
// like LeastLoadedPolicy.
type AdaptivePolicy struct{}

// Name implements ReplicaPolicy.
func (AdaptivePolicy) Name() string { return "adaptive" }

// Assign implements ReplicaPolicy (no load feedback: round-robin).
func (AdaptivePolicy) Assign(ids []string, replicas int) []int {
	return InterleavePolicy{}.Assign(ids, replicas)
}

// AssignLoaded implements LoadAwarePolicy. Weights are relative: each
// host's latency is divided by the fleet mean (hosts without a sample get
// weight 1), so uniform fleets stay balanced and only genuinely slower
// hosts shed load.
func (AdaptivePolicy) AssignLoaded(ids []string, loads []HostLoad) []int {
	var sum float64
	var sampled int
	for _, l := range loads {
		if l.LatencyMs > 0 {
			sum += l.LatencyMs
			sampled++
		}
	}
	mean := 1.0
	if sampled > 0 {
		mean = sum / float64(sampled)
	}
	score := make([]float64, len(loads))
	weight := make([]float64, len(loads))
	for r, l := range loads {
		w := 1.0
		if l.LatencyMs > 0 {
			w = l.LatencyMs / mean
		}
		weight[r] = w
		score[r] = float64(l.Created+l.InFlight) * w
	}
	return greedyMin(ids, score, func(r int) float64 { return weight[r] })
}

// greedyMin assigns each ID to the replica with the lowest score, then
// bumps that replica's score by step(r) so subsequent IDs spread out.
// Ties break toward the lowest index, keeping placement deterministic.
func greedyMin(ids []string, score []float64, step func(r int) float64) []int {
	out := make([]int, len(ids))
	for i := range ids {
		best := 0
		for r := 1; r < len(score); r++ {
			if score[r] < score[best] {
				best = r
			}
		}
		out[i] = best
		score[best] += step(best)
	}
	return out
}

// AllPolicyNames lists the selectable replica policies.
var AllPolicyNames = []string{"interleave", "block", "hash", "least-loaded", "adaptive"}

// PolicyByName returns the named replica policy; empty means the paper's
// interleaving.
func PolicyByName(name string) (ReplicaPolicy, error) {
	switch name {
	case "", "interleave":
		return InterleavePolicy{}, nil
	case "block":
		return BlockPolicy{}, nil
	case "hash":
		return HashPolicy{}, nil
	case "least-loaded":
		return LeastLoadedPolicy{}, nil
	case "adaptive":
		return AdaptivePolicy{}, nil
	}
	return nil, fmt.Errorf("core: unknown replica policy %q (have %v)", name, AllPolicyNames)
}

// pendingCreate is the in-flight marker for one execution ID whose
// instance is being created: duplicate requests wait on done instead of
// re-creating.
type pendingCreate struct {
	done chan struct{} // closed when gsh/err are set
	gsh  string
	err  error
}

// Manager is the PPerfGrid Manager (section 5.3.1.4): a non-transient,
// internal grid service that caches Execution service instances. Creation
// of a grid service instance is relatively expensive, so instances are
// created only on first reference; the GSH of a previously created
// instance is returned from the hash table thereafter. When the data
// source is replicated on multiple hosts, the Manager distributes
// instantiations across them under its ReplicaPolicy.
//
// A cold batch is created in parallel: missing IDs are grouped by
// assigned replica, each group goes out as one plural CreateServices
// call (for BatchFactoryRefs), and the groups run concurrently. The
// Manager's mutex is never held across the wire — cached-handle lookups
// proceed while creations are in flight, and in-flight markers make
// duplicate requests wait for the first creation instead of re-creating.
type Manager struct {
	policy    ReplicaPolicy
	factories []ExecutionFactoryRef

	mu       sync.Mutex
	cache    map[string]string         // execution ID -> GSH
	inflight map[string]*pendingCreate // execution ID -> in-flight creation
	perHost  map[string]int            // replica host -> instances created
	creating []int                     // per-replica in-flight creation counts
	createMs []float64                 // per-replica EWMA of per-instance creation ms
	perID    bool                      // differential oracle: one call per ID
}

// NewManager builds a Manager over the given replica factories. A nil
// policy defaults to the paper's interleaving.
func NewManager(policy ReplicaPolicy, factories ...ExecutionFactoryRef) (*Manager, error) {
	if len(factories) == 0 {
		return nil, fmt.Errorf("core: manager needs at least one execution factory")
	}
	if policy == nil {
		policy = InterleavePolicy{}
	}
	return &Manager{
		policy:    policy,
		factories: factories,
		cache:     make(map[string]string),
		inflight:  make(map[string]*pendingCreate),
		perHost:   make(map[string]int),
		creating:  make([]int, len(factories)),
		createMs:  make([]float64, len(factories)),
	}, nil
}

// SetBatching toggles plural CreateServices calls. Off, every missing ID
// costs its own CreateService round trip (still grouped per replica and
// run concurrently across replicas) — retained as the differential oracle
// the batched path is tested against.
func (m *Manager) SetBatching(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.perID = !on
}

// ExecutionHandles returns one GSH per execution ID, creating instances
// for IDs seen for the first time and serving the rest from the cache.
// Uncached IDs are distributed across the replica factories by the policy
// and created concurrently, one (batched) factory call per replica; IDs
// whose creation another request already started are waited on, not
// re-created. On any creation failure the whole request reports the first
// error (handles created before the failure stay cached); failed IDs are
// released for retry.
func (m *Manager) ExecutionHandles(ids []string) ([]string, error) {
	out := make([]string, len(ids))

	m.mu.Lock()
	var newIDs []string
	newPending := make(map[string]*pendingCreate)
	waiters := make(map[*pendingCreate][]int)
	for i, id := range ids {
		if h, ok := m.cache[id]; ok {
			out[i] = h
			continue
		}
		p, ok := m.inflight[id]
		if !ok {
			p = &pendingCreate{done: make(chan struct{})}
			m.inflight[id] = p
			newPending[id] = p
			newIDs = append(newIDs, id)
		}
		waiters[p] = append(waiters[p], i)
	}
	var groups [][]string
	if len(newIDs) > 0 {
		assign := m.assignLocked(newIDs)
		groups = make([][]string, len(m.factories))
		for j, id := range newIDs {
			groups[assign[j]] = append(groups[assign[j]], id)
		}
		for r, group := range groups {
			m.creating[r] += len(group)
		}
	}
	m.mu.Unlock()

	// Create the new groups concurrently across replicas, no lock held
	// over the wire.
	for r, group := range groups {
		if len(group) == 0 {
			continue
		}
		go m.createOn(r, group, newPending)
	}

	// Collect: both our own creations and ones other requests started.
	var firstErr error
	for p, idxs := range waiters {
		<-p.done
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			continue
		}
		for _, i := range idxs {
			out[i] = p.gsh
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// assignLocked distributes new IDs across replicas under the policy,
// feeding load-aware policies a per-replica HostLoad snapshot (Manager
// accounting merged with container worker-pool feedback when the factory
// ref exposes it). Caller holds m.mu.
func (m *Manager) assignLocked(ids []string) []int {
	la, ok := m.policy.(LoadAwarePolicy)
	if !ok {
		return m.policy.Assign(ids, len(m.factories))
	}
	loads := make([]HostLoad, len(m.factories))
	for r, f := range m.factories {
		l := HostLoad{
			Created:   m.perHost[f.Host()] + m.creating[r],
			LatencyMs: m.createMs[r],
		}
		if lr, ok := f.(LoadReporter); ok {
			live := lr.Load()
			l.InFlight = live.InFlight
			l.Queued, l.Executing = live.Queued, live.Executing
			if live.LatencyMs > 0 {
				l.LatencyMs = live.LatencyMs
			}
		}
		loads[r] = l
	}
	return la.AssignLoaded(ids, loads)
}

// createOn instantiates one replica's group of IDs — a single plural call
// when both sides support it (and batching is on), per-ID calls otherwise
// — then publishes the outcome to the cache and every waiter.
func (m *Manager) createOn(r int, group []string, pending map[string]*pendingCreate) {
	f := m.factories[r]
	m.mu.Lock()
	perID := m.perID
	m.mu.Unlock()

	start := time.Now()
	var handles []string // created prefix of group
	var err error
	bf, batchable := f.(BatchFactoryRef)
	if batchable && !perID {
		handles, err = bf.CreateExecutions(group)
		if err != nil {
			handles = nil // plural call is all-or-nothing
		}
	} else {
		handles = make([]string, 0, len(group))
		for _, id := range group {
			h, cerr := f.CreateExecution(id)
			if cerr != nil {
				err = cerr
				break
			}
			handles = append(handles, h)
		}
	}
	elapsed := time.Since(start)

	m.mu.Lock()
	m.creating[r] -= len(group)
	if n := len(handles); n > 0 {
		perMs := float64(elapsed) / float64(time.Millisecond) / float64(n)
		if m.createMs[r] == 0 {
			m.createMs[r] = perMs
		} else {
			m.createMs[r] = 0.8*m.createMs[r] + 0.2*perMs
		}
	}
	for i, id := range group {
		p := pending[id]
		if i < len(handles) {
			p.gsh = handles[i]
			m.cache[id] = handles[i]
			m.perHost[f.Host()]++
		} else {
			p.err = fmt.Errorf("core: create execution %q on %s: %w", id, f.Host(), err)
		}
		delete(m.inflight, id)
	}
	m.mu.Unlock()
	for _, id := range group {
		close(pending[id].done)
	}
}

// CachedCount returns the number of cached Execution instances.
func (m *Manager) CachedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// PerHostCounts returns a copy of the per-replica creation counts.
func (m *Manager) PerHostCounts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.perHost))
	for k, v := range m.perHost {
		out[k] = v
	}
	return out
}

// Forget drops one cached instance handle, e.g. after its instance is
// destroyed by lifetime management.
func (m *Manager) Forget(execID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cache, execID)
}

// Invoke implements the Manager PortType wire protocol.
func (m *Manager) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case OpGetExecutions:
		return m.ExecutionHandles(params)
	}
	return nil, fmt.Errorf("%w: %q on Manager", ogsi.ErrUnknownOperation, op)
}

// ServiceData publishes Manager statistics.
func (m *Manager) ServiceData() map[string][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	hosts := make([]string, 0, len(m.factories))
	loads := make([]string, 0, len(m.factories))
	for _, f := range m.factories {
		hosts = append(hosts, f.Host())
		var l HostLoad
		if lr, ok := f.(LoadReporter); ok {
			l = lr.Load()
		}
		loads = append(loads, fmt.Sprintf("host=%s|queued=%d|executing=%d|latencyMs=%.3f",
			f.Host(), l.Queued, l.Executing, l.LatencyMs))
	}
	return map[string][]string{
		"policy":       {m.policy.Name()},
		"replicaHosts": hosts,
		"replicaLoads": loads,
		"cachedCount":  {strconv.Itoa(len(m.cache))},
		"replicaCount": {strconv.Itoa(len(m.factories))},
	}
}
