package core

// Tests for the scale-out path: batched parallel instance creation in the
// Manager (lock never held over the wire, in-flight markers, per-replica
// plural creation), the replica policies including the load-aware ones,
// and getPR request coalescing in the Execution service.

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// slowBatchFactory is a BatchFactoryRef whose creations block until
// released — the "slow remote factory" the regression tests need.
type slowBatchFactory struct {
	host    string
	started chan string   // receives one value per create call
	release chan struct{} // closed (or sent to) to let creations finish
	fail    bool

	mu         sync.Mutex
	made       []string
	batchCalls int
	unitCalls  int
}

func newSlowBatchFactory(host string) *slowBatchFactory {
	return &slowBatchFactory{
		host:    host,
		started: make(chan string, 64),
		release: make(chan struct{}),
	}
}

func (f *slowBatchFactory) CreateExecution(id string) (string, error) {
	f.started <- id
	<-f.release
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unitCalls++
	if f.fail {
		return "", errors.New("factory down")
	}
	f.made = append(f.made, id)
	return gsh.New(f.host, ExecutionType, id).String(), nil
}

func (f *slowBatchFactory) CreateExecutions(ids []string) ([]string, error) {
	f.started <- ids[0]
	<-f.release
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batchCalls++
	if f.fail {
		return nil, errors.New("factory down")
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		f.made = append(f.made, id)
		out[i] = gsh.New(f.host, ExecutionType, id).String()
	}
	return out, nil
}

func (f *slowBatchFactory) Host() string { return f.host }

func (f *slowBatchFactory) counts() (made, batch, unit int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.made), f.batchCalls, f.unitCalls
}

// TestManagerCachedReadsDontStallBehindCreation is the regression test
// for the old lock-across-the-wire bug: a slow remote creation must not
// block lookups of already-cached handles.
func TestManagerCachedReadsDontStallBehindCreation(t *testing.T) {
	f := newSlowBatchFactory("a:1")
	m, err := NewManager(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache with one instance.
	done := make(chan struct{})
	go func() { defer close(done); _, _ = m.ExecutionHandles([]string{"warm"}) }()
	<-f.started
	f.release <- struct{}{}
	<-done

	// Start a creation that blocks until released.
	var slowErr error
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		_, slowErr = m.ExecutionHandles([]string{"cold"})
	}()
	<-f.started // creation is now in flight, factory blocked

	// Cached lookups must complete while the creation is still blocked.
	start := time.Now()
	hs, err := m.ExecutionHandles([]string{"warm"})
	elapsed := time.Since(start)
	if err != nil || len(hs) != 1 {
		t.Fatalf("cached lookup: %v, %v", hs, err)
	}
	if elapsed > time.Second {
		t.Fatalf("cached lookup stalled %v behind in-flight creation", elapsed)
	}
	select {
	case <-slowDone:
		t.Fatal("slow creation finished before release — test race")
	default:
	}
	f.release <- struct{}{}
	<-slowDone
	if slowErr != nil {
		t.Fatalf("slow creation: %v", slowErr)
	}
}

// TestManagerInFlightDeduplicates proves duplicate requests wait on the
// in-flight marker instead of re-creating: two concurrent batches for the
// same missing ID cost one factory call.
func TestManagerInFlightDeduplicates(t *testing.T) {
	f := newSlowBatchFactory("a:1")
	m, _ := NewManager(nil, f)

	results := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go func() {
			hs, err := m.ExecutionHandles([]string{"x"})
			if err != nil {
				results <- "err: " + err.Error()
				return
			}
			results <- hs[0]
		}()
	}
	// Exactly one creation starts; the duplicate waits on the marker.
	<-f.started
	select {
	case id := <-f.started:
		t.Fatalf("duplicate request started a second creation (%q)", id)
	case <-time.After(50 * time.Millisecond):
	}
	f.release <- struct{}{}
	a, b := <-results, <-results
	if a != b {
		t.Fatalf("waiter got different handle: %q vs %q", a, b)
	}
	if made, batch, unit := f.counts(); made != 1 || batch+unit != 1 {
		t.Fatalf("made=%d batch=%d unit=%d, want one creation", made, batch, unit)
	}
}

// TestManagerBatchGroupsPerReplica proves a cold batch costs one plural
// factory call per replica (not one per ID) and that the groups run
// concurrently.
func TestManagerBatchGroupsPerReplica(t *testing.T) {
	a := newSlowBatchFactory("a:1")
	b := newSlowBatchFactory("b:1")
	m, _ := NewManager(InterleavePolicy{}, a, b)

	ids := []string{"1", "2", "3", "4", "5", "6"}
	done := make(chan error, 1)
	go func() {
		_, err := m.ExecutionHandles(ids)
		done <- err
	}()
	// Both replicas' creations must be in flight at the same time —
	// sequential creation would start b only after a finished.
	<-a.started
	<-b.started
	close(a.release)
	close(b.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	aMade, aBatch, aUnit := a.counts()
	bMade, bBatch, bUnit := b.counts()
	if aMade != 3 || bMade != 3 {
		t.Fatalf("distribution %d/%d, want 3/3", aMade, bMade)
	}
	if aBatch != 1 || bBatch != 1 || aUnit != 0 || bUnit != 0 {
		t.Fatalf("calls a(batch=%d,unit=%d) b(batch=%d,unit=%d), want one plural call each",
			aBatch, aUnit, bBatch, bUnit)
	}
}

// TestManagerBatchedMatchesPerIDOracle differentially tests the batched
// path against the retained per-ID oracle: same policy, same IDs, same
// handles and same placement.
func TestManagerBatchedMatchesPerIDOracle(t *testing.T) {
	ids := make([]string, 25)
	for i := range ids {
		ids[i] = fmt.Sprintf("e%02d", i)
	}
	for _, policy := range []ReplicaPolicy{InterleavePolicy{}, BlockPolicy{}, HashPolicy{}, LeastLoadedPolicy{}} {
		run := func(batched bool) ([]string, map[string]int) {
			t.Helper()
			a := newSlowBatchFactory("a:1")
			b := newSlowBatchFactory("b:1")
			c := newSlowBatchFactory("c:1")
			close(a.release)
			close(b.release)
			close(c.release)
			go func() { // drain the started channel; creations are instant
				for range a.started {
				}
			}()
			go func() {
				for range b.started {
				}
			}()
			go func() {
				for range c.started {
				}
			}()
			m, err := NewManager(policy, a, b, c)
			if err != nil {
				t.Fatal(err)
			}
			m.SetBatching(batched)
			hs, err := m.ExecutionHandles(ids)
			if err != nil {
				t.Fatal(err)
			}
			return hs, m.PerHostCounts()
		}
		batchedHs, batchedCounts := run(true)
		oracleHs, oracleCounts := run(false)
		if !reflect.DeepEqual(batchedHs, oracleHs) {
			t.Errorf("%s: batched handles diverge from per-ID oracle:\n%v\n%v",
				policy.Name(), batchedHs, oracleHs)
		}
		if !reflect.DeepEqual(batchedCounts, oracleCounts) {
			t.Errorf("%s: batched placement %v diverges from oracle %v",
				policy.Name(), batchedCounts, oracleCounts)
		}
	}
}

// TestManagerBatchCreateFailure covers the plural path's error handling:
// the request reports the failure, and the failed IDs are released for
// retry once the factory recovers.
func TestManagerBatchCreateFailure(t *testing.T) {
	f := newSlowBatchFactory("a:1")
	close(f.release)
	go func() {
		for range f.started {
		}
	}()
	f.fail = true
	m, _ := NewManager(nil, f)
	if _, err := m.ExecutionHandles([]string{"1", "2"}); err == nil {
		t.Fatal("batch factory failure not propagated")
	}
	f.mu.Lock()
	f.fail = false
	f.mu.Unlock()
	hs, err := m.ExecutionHandles([]string{"1", "2"})
	if err != nil || len(hs) != 2 {
		t.Fatalf("retry after failure: %v, %v", hs, err)
	}
}

// TestManagerDuplicateIDsInBatch: repeated IDs in one request map to one
// creation and identical handles.
func TestManagerDuplicateIDsInBatch(t *testing.T) {
	f := newSlowBatchFactory("a:1")
	close(f.release)
	go func() {
		for range f.started {
		}
	}()
	m, _ := NewManager(nil, f)
	hs, err := m.ExecutionHandles([]string{"7", "7", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if hs[0] != hs[1] || hs[1] != hs[2] {
		t.Fatalf("duplicate IDs got different handles: %v", hs)
	}
	if made, _, _ := f.counts(); made != 1 {
		t.Fatalf("created %d instances for one unique ID", made)
	}
}

// TestPolicyFairnessManyHosts checks replica-policy fairness past the
// paper's two-host testbed: uniform batches land within ±1 per host for
// every balanced policy at 3, 4, and 8 replicas.
func TestPolicyFairnessManyHosts(t *testing.T) {
	for _, replicas := range []int{3, 4, 8} {
		for _, batch := range []int{24, 25, 124} {
			ids := make([]string, batch)
			for i := range ids {
				ids[i] = fmt.Sprintf("exec-%03d", i)
			}
			for _, policy := range []ReplicaPolicy{InterleavePolicy{}, BlockPolicy{}, HashPolicy{}, LeastLoadedPolicy{}} {
				var assign []int
				if la, ok := policy.(LoadAwarePolicy); ok {
					assign = la.AssignLoaded(ids, make([]HostLoad, replicas))
				} else {
					assign = policy.Assign(ids, replicas)
				}
				counts := make([]int, replicas)
				for _, r := range assign {
					if r < 0 || r >= replicas {
						t.Fatalf("%s: assignment %d out of range [0,%d)", policy.Name(), r, replicas)
					}
					counts[r]++
				}
				lo, hi := counts[0], counts[0]
				for _, c := range counts {
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
				if hi-lo > 1 {
					t.Errorf("%s: %d IDs on %d hosts spread %d (>1): %v",
						policy.Name(), batch, replicas, hi-lo, counts)
				}
			}
		}
	}
}

// TestHashPolicyIncrementalSpread guards the incremental workload:
// single-ID batches (clients resolving executions one at a time) must
// spread across replicas by each ID's own hash, not pile onto replica 0.
func TestHashPolicyIncrementalSpread(t *testing.T) {
	for _, replicas := range []int{2, 4} {
		counts := make([]int, replicas)
		for i := 0; i < 124; i++ {
			assign := (HashPolicy{}).Assign([]string{fmt.Sprintf("exec-%03d", i)}, replicas)
			counts[assign[0]]++
		}
		for r, c := range counts {
			if c == 0 {
				t.Errorf("%d replicas: replica %d got no single-ID batches: %v", replicas, r, counts)
			}
			if c > 124*3/4 {
				t.Errorf("%d replicas: replica %d hoards single-ID batches: %v", replicas, r, counts)
			}
		}
	}
}

// TestHashPolicyOrderIndependent: the same ID set must land identically
// regardless of batch order — the property hash placement trades
// composition-independence for.
func TestHashPolicyOrderIndependent(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e", "f", "g"}
	fwd := (HashPolicy{}).Assign(ids, 3)
	rev := make([]string, len(ids))
	for i, id := range ids {
		rev[len(ids)-1-i] = id
	}
	revAssign := (HashPolicy{}).Assign(rev, 3)
	for i, id := range ids {
		if fwd[i] != revAssign[len(ids)-1-i] {
			t.Fatalf("id %q placed on %d forward but %d reversed", id, fwd[i], revAssign[len(ids)-1-i])
		}
	}
}

// TestLeastLoadedPolicyFavorsIdleHosts: with one replica pre-loaded, new
// IDs flow to the others first.
func TestLeastLoadedPolicyFavorsIdleHosts(t *testing.T) {
	loads := []HostLoad{{Created: 10}, {Created: 0}, {Created: 0}}
	ids := []string{"1", "2", "3", "4", "5", "6"}
	assign := (LeastLoadedPolicy{}).AssignLoaded(ids, loads)
	counts := make([]int, 3)
	for _, r := range assign {
		counts[r]++
	}
	if counts[0] != 0 || counts[1] != 3 || counts[2] != 3 {
		t.Errorf("least-loaded counts = %v, want [0 3 3]", counts)
	}
}

// TestAdaptivePolicySkewsFromSlowHosts: a replica observed twice as slow
// receives roughly half the instances of a fast one.
func TestAdaptivePolicySkewsFromSlowHosts(t *testing.T) {
	loads := []HostLoad{{LatencyMs: 2}, {LatencyMs: 1}}
	ids := make([]string, 30)
	for i := range ids {
		ids[i] = fmt.Sprint(i)
	}
	assign := (AdaptivePolicy{}).AssignLoaded(ids, loads)
	counts := make([]int, 2)
	for _, r := range assign {
		counts[r]++
	}
	if counts[0] >= counts[1] {
		t.Fatalf("slow host got %d vs fast host's %d", counts[0], counts[1])
	}
	if counts[0] < 8 || counts[0] > 12 { // ~1/3 of 30
		t.Errorf("slow host share = %d, want about 10 of 30", counts[0])
	}
}

// TestPolicyByName covers the registry.
func TestPolicyByName(t *testing.T) {
	for _, name := range AllPolicyNames {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := PolicyByName(""); err != nil || p.Name() != "interleave" {
		t.Errorf("empty name: %v, %v", p, err)
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// countingExecWrapper wraps an ExecutionWrapper, counting and slowing
// PerformanceResults so coalescing windows are wide enough to test.
type countingExecWrapper struct {
	mapping.ExecutionWrapper
	delay time.Duration
	calls atomic.Int64
}

func (c *countingExecWrapper) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	c.calls.Add(1)
	time.Sleep(c.delay)
	return c.ExecutionWrapper.PerformanceResults(q)
}

// TestGetPRCoalescing: N concurrent identical cold getPR queries execute
// the Mapping Layer exactly once; the other N-1 are coalesced onto the
// in-flight execution and counted.
func TestGetPRCoalescing(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 31})
	ew, err := mapping.NewMemory(d).ExecutionWrapper("100")
	if err != nil {
		t.Fatal(err)
	}
	cw := &countingExecWrapper{ExecutionWrapper: ew, delay: 50 * time.Millisecond}
	svc := NewExecutionService("100", cw, NewLRU(0), nil)
	tr, _ := svc.TimeStartEnd()
	q := perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"}

	const n = 8
	var wg sync.WaitGroup
	results := make([][]perfdata.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = svc.PerformanceResults(q)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("query %d diverged", i)
		}
	}
	if got := cw.calls.Load(); got != 1 {
		t.Fatalf("mapping layer executed %d times for %d concurrent identical queries", got, n)
	}
	if got := svc.CoalescedQueries(); got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
	sd := svc.ServiceData()
	if sd["coalescedQueries"][0] != fmt.Sprint(n-1) {
		t.Errorf("coalescedQueries SDE = %v", sd["coalescedQueries"])
	}

	// A later identical query is a plain cache hit — no new execution, no
	// new coalescing.
	if _, err := svc.PerformanceResults(q); err != nil {
		t.Fatal(err)
	}
	if cw.calls.Load() != 1 || svc.CoalescedQueries() != n-1 {
		t.Errorf("post-flight query re-executed: calls=%d coalesced=%d",
			cw.calls.Load(), svc.CoalescedQueries())
	}
}

// TestGetPRCoalescingDistinctQueries: different queries are not coalesced
// with each other.
func TestGetPRCoalescingDistinctQueries(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 32})
	ew, err := mapping.NewMemory(d).ExecutionWrapper("100")
	if err != nil {
		t.Fatal(err)
	}
	cw := &countingExecWrapper{ExecutionWrapper: ew, delay: 20 * time.Millisecond}
	svc := NewExecutionService("100", cw, NewLRU(0), nil)
	tr, _ := svc.TimeStartEnd()

	var wg sync.WaitGroup
	for _, metric := range []string{"gflops", "residual"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := perfdata.Query{Metric: metric, Time: tr, Type: "hpl"}
			if _, err := svc.PerformanceResults(q); err != nil {
				t.Errorf("%s: %v", metric, err)
			}
		}()
	}
	wg.Wait()
	if got := cw.calls.Load(); got != 2 {
		t.Errorf("distinct queries executed %d times, want 2", got)
	}
	if got := svc.CoalescedQueries(); got != 0 {
		t.Errorf("distinct queries coalesced: %d", got)
	}
}

// TestColdBatchWireCalls pins the headline wire-cost property: a cold
// B-ID batch resolved through remote factories on R replicas costs at
// most R factory round trips (one plural CreateServices per replica),
// where the per-ID oracle costs B.
func TestColdBatchWireCalls(t *testing.T) {
	const replicas = 3
	d := datagen.HPL(datagen.HPLConfig{Executions: 24, Seed: 33})
	wrappers := make([]mapping.ApplicationWrapper, replicas)
	for i := range wrappers {
		wrappers[i] = mapping.NewMemory(d)
	}
	site, err := StartSite(SiteConfig{AppName: "HPL", Wrappers: wrappers})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	ids, err := site.LocalWrapper().AllExecIDs()
	if err != nil || len(ids) != 24 {
		t.Fatalf("AllExecIDs: %v, %v", ids, err)
	}
	newRemoteManager := func() *Manager {
		refs := make([]ExecutionFactoryRef, replicas)
		for i, host := range site.Hosts() {
			refs[i] = NewRemoteFactoryRef(host)
		}
		m, err := NewManager(InterleavePolicy{}, refs...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	requests := func() int64 {
		var total int64
		for _, c := range site.Containers() {
			total += c.Requests()
		}
		return total
	}

	before := requests()
	if _, err := newRemoteManager().ExecutionHandles(ids); err != nil {
		t.Fatal(err)
	}
	batchedCalls := requests() - before
	if batchedCalls > replicas {
		t.Errorf("cold %d-ID batch on %d replicas issued %d wire calls, want <= %d",
			len(ids), replicas, batchedCalls, replicas)
	}

	before = requests()
	oracle := newRemoteManager()
	oracle.SetBatching(false)
	if _, err := oracle.ExecutionHandles(ids); err != nil {
		t.Fatal(err)
	}
	perIDCalls := requests() - before
	if perIDCalls != int64(len(ids)) {
		t.Errorf("per-ID oracle issued %d wire calls, want %d", perIDCalls, len(ids))
	}
	t.Logf("cold batch wire calls: batched=%d per-ID=%d", batchedCalls, perIDCalls)
}
