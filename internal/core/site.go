package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/wsdl"
)

// SiteConfig describes one PPerfGrid site: a performance data store
// (behind its Mapping-Layer wrapper), optionally replicated across several
// hosts, exposed through Application and Execution grid services.
type SiteConfig struct {
	// AppName names the published application (e.g. "HPL").
	AppName string
	// Wrappers holds one Mapping-Layer wrapper per replica host; the
	// first is the primary, which also hosts the Application factory and
	// the Manager. At least one is required.
	Wrappers []mapping.ApplicationWrapper
	// Workers bounds concurrent invocations per host (0 = unbounded).
	// One worker models the paper's single-CPU hosts.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot per host;
	// past it the container sheds with a typed overload fault. 0 means
	// unbounded (no admission control). See container.Options.
	QueueDepth int
	// QueueWait bounds how long an admitted request may wait for a
	// worker slot before being shed. 0 means no budget.
	QueueWait time.Duration
	// CachingOff disables the Performance Results cache, as in the
	// paper's Table 5 baseline runs.
	CachingOff bool
	// CachePolicy selects the replacement policy ("lru", "lfu", "cost");
	// empty means LRU. CacheCapacity 0 means unbounded entries.
	CachePolicy   string
	CacheCapacity int
	// CacheBytes bounds each instance cache's footprint (decoded results
	// plus attached wire envelopes); 0 means unbounded.
	CacheBytes int64
	// CacheShards hints the cache shard count; 0 picks the default.
	CacheShards int
	// CacheSingleLock selects the retained single-lock cache — the
	// sharded cache's differential oracle and ablation hook.
	CacheSingleLock bool
	// Policy selects replica distribution; nil means interleaving.
	Policy ReplicaPolicy
	// Interceptors (e.g. a GSI verifier) run on every host.
	Interceptors []container.Interceptor
	// Notifications enables per-Execution update notification hubs.
	Notifications bool
	// Addr is the listen address for the primary host; additional
	// replicas always bind "127.0.0.1:0". Empty means "127.0.0.1:0".
	Addr string
}

// Site is a running PPerfGrid site.
type Site struct {
	cfg        SiteConfig
	containers []*container.Container
	manager    *Manager

	appFactory *ogsi.Instance

	mu        sync.Mutex
	instances map[string][]*ExecutionService // execID -> live services (one per replica that created it)
}

// StartSite stands up the site's containers, deploys an Execution factory
// on every replica host, and deploys the Application factory and Manager
// on the primary host.
func StartSite(cfg SiteConfig) (*Site, error) {
	if len(cfg.Wrappers) == 0 {
		return nil, fmt.Errorf("core: site %q has no wrappers", cfg.AppName)
	}
	if cfg.AppName == "" {
		return nil, fmt.Errorf("core: site has no application name")
	}
	s := &Site{cfg: cfg, instances: make(map[string][]*ExecutionService)}

	var refs []ExecutionFactoryRef
	for i, w := range cfg.Wrappers {
		hosting := ogsi.NewHosting("pending:0")
		cont := container.New(hosting, container.Options{
			Workers:      cfg.Workers,
			QueueDepth:   cfg.QueueDepth,
			QueueWait:    cfg.QueueWait,
			Interceptors: cfg.Interceptors,
		})
		addr := "127.0.0.1:0"
		if i == 0 && cfg.Addr != "" {
			addr = cfg.Addr
		}
		if err := cont.Start(addr); err != nil {
			s.Close()
			return nil, err
		}
		s.containers = append(s.containers, cont)

		execFactory := ogsi.NewFactory(hosting, ExecutionType, ExecutionDefinition(), s.executionConstructor(w))
		if _, err := execFactory.Deploy(); err != nil {
			s.Close()
			return nil, err
		}
		if _, err := ogsi.NewHandleMap(hosting).Deploy(); err != nil {
			s.Close()
			return nil, err
		}
		refs = append(refs, &LocalFactoryRef{
			Factory: execFactory,
			HostID:  cont.Host(),
			// Feed the container's worker-pool signals (queue depth,
			// service-time EWMA) to load-aware replica policies.
			LoadFn: func() HostLoad {
				q, x := int(cont.Queued()), int(cont.Executing())
				return HostLoad{InFlight: q + x, Queued: q, Executing: x, LatencyMs: cont.MeanServiceMs()}
			},
		})
	}

	manager, err := NewManager(cfg.Policy, refs...)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.manager = manager
	primary := s.containers[0].Hosting()
	if _, err := primary.DeployPersistent(ManagerType, manager, ManagerDefinition()); err != nil {
		s.Close()
		return nil, err
	}

	appFactory := ogsi.NewFactory(primary, ApplicationType, ApplicationDefinition(),
		func(params []string) (ogsi.Service, *wsdl.Definition, error) {
			return NewApplicationService(cfg.Wrappers[0], manager), nil, nil
		})
	fin, err := appFactory.Deploy()
	if err != nil {
		s.Close()
		return nil, err
	}
	s.appFactory = fin
	return s, nil
}

// executionConstructor builds the Execution factory constructor for one
// replica's wrapper. Each instance gets its own Performance Results cache,
// per section 5.3.2.3.
func (s *Site) executionConstructor(w mapping.ApplicationWrapper) ogsi.Constructor {
	return func(params []string) (ogsi.Service, *wsdl.Definition, error) {
		if len(params) != 1 || params[0] == "" {
			return nil, nil, fmt.Errorf("core: Execution factory requires [executionID], got %v", params)
		}
		id := params[0]
		ew, err := w.ExecutionWrapper(id)
		if err != nil {
			return nil, nil, err
		}
		var cache Cache
		if !s.cfg.CachingOff {
			cache = NewCacheFromConfig(CacheConfig{
				Policy:     s.cfg.CachePolicy,
				MaxEntries: s.cfg.CacheCapacity,
				MaxBytes:   s.cfg.CacheBytes,
				Shards:     s.cfg.CacheShards,
				SingleLock: s.cfg.CacheSingleLock,
			})
		}
		var hub *ogsi.NotificationHub
		if s.cfg.Notifications {
			hub = ogsi.NewNotificationHub(container.SOAPSinkDialer())
		}
		svc := NewExecutionService(id, ew, cache, hub)
		svc.SetSinkDialer(container.SOAPSinkDialer())
		s.mu.Lock()
		s.instances[id] = append(s.instances[id], svc)
		s.mu.Unlock()
		def := ExecutionDefinition()
		if s.cfg.Notifications {
			def = def.Merge(ogsi.NotificationSourcePortType())
		}
		return svc, def, nil
	}
}

// Close shuts down every container of the site.
func (s *Site) Close() {
	for _, c := range s.containers {
		_ = c.Close()
	}
}

// Drain gracefully shuts the site down: every container stops accepting,
// sheds new work, and lets in-flight requests finish (or deadline out at
// ctx). Containers drain concurrently, so the site's drain time is the
// slowest host's, not the sum. Returns the first container's error, if
// any.
func (s *Site) Drain(ctx context.Context) error {
	errs := make(chan error, len(s.containers))
	for _, c := range s.containers {
		go func() { errs <- c.Drain(ctx) }()
	}
	var first error
	for range s.containers {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Hosts returns the site's replica host addresses; element 0 is the
// primary.
func (s *Site) Hosts() []string {
	out := make([]string, len(s.containers))
	for i, c := range s.containers {
		out[i] = c.Host()
	}
	return out
}

// PrimaryHost returns the primary host address.
func (s *Site) PrimaryHost() string { return s.containers[0].Host() }

// ApplicationFactoryHandle returns the GSH of the site's Application
// factory — the handle published to the registry.
func (s *Site) ApplicationFactoryHandle() gsh.Handle { return s.appFactory.Handle() }

// Manager returns the site's Manager.
func (s *Site) Manager() *Manager { return s.manager }

// Containers exposes the site's containers, e.g. for request counting in
// experiments.
func (s *Site) Containers() []*container.Container { return s.containers }

// LocalWrapper returns the primary wrapper for co-located clients — the
// paper's future-work "local bypass" optimization: a client on the same
// host accesses the data store directly through its wrapper, skipping the
// Services Layer.
func (s *Site) LocalWrapper() mapping.ApplicationWrapper { return s.cfg.Wrappers[0] }

// ExecutionServices returns the live Execution service implementations
// created for an execution ID (one per replica host that instantiated it).
func (s *Site) ExecutionServices(execID string) []*ExecutionService {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*ExecutionService, len(s.instances[execID]))
	copy(out, s.instances[execID])
	return out
}

// NotifyUpdate announces a data-store update for one execution to every
// live instance (dropping memoized state and caches) and their
// subscribers.
func (s *Site) NotifyUpdate(execID, message string) {
	for _, svc := range s.ExecutionServices(execID) {
		svc.NotifyUpdate(message)
	}
}

// PublishResults ingests Performance Results for one execution across the
// whole site: each replica wraps its own copy of the data store, so the
// write lands on every replica's wrapper (or replicas would diverge), and
// every live Execution instance for the ID then applies its
// write-visibility sequence (epoch bump, cache purge, subscriber
// notification). A publishPR call on a single instance, by contrast,
// writes only that replica's store — single-replica sites (the common
// test topology) can use either path interchangeably.
func (s *Site) PublishResults(execID string, rs []perfdata.Result) error {
	if len(rs) == 0 {
		return nil
	}
	for _, w := range s.cfg.Wrappers {
		ew, err := w.ExecutionWrapper(execID)
		if err != nil {
			return err
		}
		rw, ok := ew.(mapping.ResultWriter)
		if !ok {
			return fmt.Errorf("core: site %s execution %s: %w", s.cfg.AppName, execID, mapping.ErrNotWritable)
		}
		if err := rw.PublishResults(rs); err != nil {
			return err
		}
	}
	for _, svc := range s.ExecutionServices(execID) {
		svc.noteWrite(fmt.Sprintf("published %d results", len(rs)))
	}
	return nil
}
