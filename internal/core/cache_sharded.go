package core

import (
	"container/heap"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/perfdata"
)

// This file holds the production Performance Results cache: the key space
// is split across power-of-two shards, each with its own RWMutex, entry
// map, and eviction min-heap.
//
//   - Hits (Get/GetWire) take only the shard's read lock: lookups proceed
//     in parallel and bump per-entry recency/frequency via atomics, so the
//     hot Table 5 path never serializes on a writer lock.
//   - Eviction pops the shard's min-heap: O(log n) per victim against the
//     single-lock implementation's O(n) scan (lfu/cost). Heap scores are
//     repaired lazily — read-side bumps only ever raise an entry's score,
//     so eviction re-sinks stale roots until the true minimum surfaces.
//   - Capacity is accounted in bytes (EntryFootprint over results + wire)
//     and/or entries. Budgets divide evenly across shards (floor), so the
//     configured totals are strict upper bounds.
//
// The pre-sharding single-lock caches in cache.go remain as the
// differential oracle and ablation hook (CacheConfig.SingleLock), the
// same pattern as the soap legacy codec and the Manager's per-ID path.

// DefaultCacheShards is the shard count used when CacheConfig.Shards is
// unset. 16 keeps per-shard budgets meaningful at test-scale capacities
// while spreading unrelated keys across independent locks.
const DefaultCacheShards = 16

// minShardBudgetBytes is the smallest per-shard byte budget a defaulted
// shard count will produce: budgets divide across shards, so a small
// budget over many shards would make SMG98-sized entries uncacheable in
// every shard. An explicit CacheConfig.Shards overrides this clamp.
const minShardBudgetBytes = 64 << 10

// minShardEntries is the analogous clamp for entry capacities: a
// defaulted shard count shrinks until each shard owns at least this many
// entries, so a small capacity is not silently floored away (16 shards
// over MaxEntries 24 would yield an effective capacity of 16, with hash
// imbalance evicting hot keys while other shards sit empty).
const minShardEntries = 8

const (
	policyLRU = iota
	policyLFU
	policyCost
)

// shardEntry is one cached query result of the sharded cache. Score
// inputs touched on the read-locked hit path (uses, lastSeq) are atomics;
// everything else is guarded by the shard's write lock.
type shardEntry struct {
	key     string
	results []perfdata.Result
	wire    []byte
	cost    time.Duration
	size    int64 // EntryFootprint, maintained on every mutation

	uses    atomic.Int64 // read/wire hits, feeds lfu and cost scores
	lastSeq atomic.Int64 // recency stamp, feeds the lru score
	insSeq  int64        // insertion order: deterministic tie-break

	hscore int64 // score recorded in the heap (may lag the live score)
	hindex int   // position in the shard heap
}

// entryHeap is a min-heap over (hscore, insSeq): the entry with the
// lowest recorded score — oldest first among ties — is the next victim.
type entryHeap struct {
	items []*shardEntry
}

func (h *entryHeap) Len() int { return len(h.items) }
func (h *entryHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.hscore != b.hscore {
		return a.hscore < b.hscore
	}
	return a.insSeq < b.insSeq
}
func (h *entryHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].hindex = i
	h.items[j].hindex = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*shardEntry)
	e.hindex = len(h.items)
	h.items = append(h.items, e)
}
func (h *entryHeap) Pop() any {
	old := h.items
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.hindex = -1
	h.items = old[:n-1]
	return e
}

// cacheShard is one lock domain of the sharded cache.
type cacheShard struct {
	mu      sync.RWMutex
	entries map[string]*shardEntry
	heap    entryHeap
	bytes   int64 // footprint of this shard's entries, under mu
	seq     int64 // recency/insertion stamp source (atomic: bumped under RLock)

	hits      atomic.Int64
	misses    atomic.Int64
	evictions int64 // under mu
}

// shardedCache implements Cache with per-shard locking, heap eviction,
// and byte budgets.
type shardedCache struct {
	cfg        CacheConfig
	policyCode int
	seed       maphash.Seed
	shards     []cacheShard
	mask       uint64

	perShardEntries int   // 0 = unbounded
	perShardBytes   int64 // 0 = unbounded
}

// newSharded builds the sharded cache. Budgets divide across shards by
// floor division, so shards*perShard never exceeds the configured total;
// the shard count is clamped so every shard owns at least one entry (and
// a useful byte budget) of its bound.
func newSharded(cfg CacheConfig) *shardedCache {
	cfg.Policy = normalizePolicy(cfg.Policy)
	n := cfg.Shards
	if n <= 0 {
		n = DefaultCacheShards
		if cfg.MaxBytes > 0 {
			for n > 1 && cfg.MaxBytes/int64(n) < minShardBudgetBytes {
				n /= 2
			}
		}
		if cfg.MaxEntries > 0 {
			for n > 1 && cfg.MaxEntries/n < minShardEntries {
				n /= 2
			}
		}
	}
	if cfg.MaxEntries > 0 && n > cfg.MaxEntries {
		n = cfg.MaxEntries
	}
	if cfg.MaxBytes > 0 && int64(n) > cfg.MaxBytes {
		n = int(cfg.MaxBytes)
	}
	shards := 1
	for shards*2 <= n {
		shards *= 2
	}
	c := &shardedCache{
		cfg:    cfg,
		seed:   maphash.MakeSeed(),
		shards: make([]cacheShard, shards),
		mask:   uint64(shards - 1),
	}
	switch cfg.Policy {
	case "lfu":
		c.policyCode = policyLFU
	case "cost":
		c.policyCode = policyCost
	default:
		c.policyCode = policyLRU
	}
	if cfg.MaxEntries > 0 {
		c.perShardEntries = cfg.MaxEntries / shards
	}
	if cfg.MaxBytes > 0 {
		c.perShardBytes = cfg.MaxBytes / int64(shards)
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*shardEntry)
	}
	return c
}

// shard maps a key to its shard. maphash is the runtime's hardware-
// accelerated string hash — the hot hit path pays a few nanoseconds here,
// not a byte-at-a-time loop over SMG98-length keys.
func (c *shardedCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&c.mask]
}

// score computes an entry's live eviction score — higher keeps longer.
// Scores only grow between explicit writes: uses and lastSeq are
// monotonic, and cost changes (which can lower the cost score) happen
// under the write lock with an immediate heap fix.
func (c *shardedCache) score(e *shardEntry) int64 {
	switch c.policyCode {
	case policyLFU:
		return e.uses.Load()
	case policyCost:
		return int64(e.cost) * (1 + e.uses.Load())
	default:
		return e.lastSeq.Load()
	}
}

// touch refreshes the score input the policy actually reads — one atomic
// on the hit path, not two. Callers hold at least the shard read lock.
func (c *shardedCache) touch(s *cacheShard, e *shardEntry) {
	if c.policyCode == policyLRU {
		e.lastSeq.Store(atomic.AddInt64(&s.seq, 1))
		return
	}
	e.uses.Add(1)
}

func (c *shardedCache) Policy() string      { return c.cfg.Policy }
func (c *shardedCache) Config() CacheConfig { return c.cfg }

// Shards reports the effective shard count.
func (c *shardedCache) Shards() int { return len(c.shards) }

// lookup is the shared read-locked hit path: find the entry, refresh its
// score input, and return its results and shard (for stats accounting).
func (c *shardedCache) lookup(key string) (*cacheShard, []perfdata.Result, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.entries[key]
	var rs []perfdata.Result
	if ok {
		rs = e.results
		c.touch(s, e)
	}
	s.mu.RUnlock()
	return s, rs, ok
}

func (c *shardedCache) Get(key string) ([]perfdata.Result, bool) {
	s, rs, ok := c.lookup(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return rs, true
}

// getQuiet implements quietCache: the same lookup without hit/miss
// accounting, for the Execution service's double-checked miss path.
func (c *shardedCache) getQuiet(key string) ([]perfdata.Result, bool) {
	_, rs, ok := c.lookup(key)
	return rs, ok
}

func (c *shardedCache) GetWire(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.entries[key]
	var wire []byte
	if ok {
		wire = e.wire
		if wire != nil {
			c.touch(s, e)
		}
	}
	s.mu.RUnlock()
	if wire == nil {
		return nil, false
	}
	s.hits.Add(1)
	return wire, true
}

func (c *shardedCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		size := EntryFootprint(key, results, nil)
		e.results = results
		e.wire = nil // new results invalidate the encoded envelope
		e.cost = cost
		s.bytes += size - e.size
		e.size = size
		e.lastSeq.Store(atomic.AddInt64(&s.seq, 1))
		// The cost score can move in either direction here; repair the
		// heap eagerly while we hold the write lock, preserving the
		// invariant that live scores never sit below recorded ones.
		e.hscore = c.score(e)
		heap.Fix(&s.heap, e.hindex)
		if !c.ensureBytesLocked(s, 0, e) {
			c.removeLocked(s, e)
			s.evictions++
		}
		return
	}
	size := EntryFootprint(key, results, nil)
	if c.perShardBytes > 0 && size > c.perShardBytes {
		// The entry alone exceeds the shard's byte budget: caching it
		// would break the budget invariant, so it is not stored — and
		// nothing is evicted for it (checked before the entry-count
		// eviction below, which must not fire for an infeasible Put).
		return
	}
	for c.perShardEntries > 0 && len(s.entries) >= c.perShardEntries {
		c.evictMinLocked(s)
	}
	if c.perShardBytes > 0 && !c.ensureBytesLocked(s, size, nil) {
		return
	}
	e := &shardEntry{key: key, results: results, cost: cost, size: size}
	e.insSeq = atomic.AddInt64(&s.seq, 1)
	e.lastSeq.Store(e.insSeq)
	s.entries[key] = e
	s.bytes += size
	e.hscore = c.score(e)
	heap.Push(&s.heap, e)
}

func (c *shardedCache) AttachWire(key string, wire []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return
	}
	if e.wire != nil {
		old := int64(len(e.wire))
		e.wire = nil
		e.size -= old
		s.bytes -= old
	}
	need := int64(len(wire))
	if !c.ensureBytesLocked(s, need, e) {
		// Even evicting every other entry cannot fit the envelope next to
		// the decoded results; keep the results, skip the wire bytes.
		return
	}
	e.wire = wire
	e.size += need
	s.bytes += need
}

// ensureBytesLocked makes room for add more bytes in the shard, evicting
// lowest-score entries — never keep — until the budget holds. It reports
// whether the budget can accommodate the addition, and refuses up front
// (evicting nothing) when it never could: an addition that exceeds the
// whole budget even alongside only the pinned entry must not flush the
// shard on its way to failing.
func (c *shardedCache) ensureBytesLocked(s *cacheShard, add int64, keep *shardEntry) bool {
	if c.perShardBytes <= 0 || s.bytes+add <= c.perShardBytes {
		return true
	}
	pinned := int64(0)
	if keep != nil {
		pinned = keep.size
	}
	if pinned+add > c.perShardBytes {
		return false
	}
	if keep != nil {
		// Pin keep by sinking it to the heap bottom; evictMinLocked's lazy
		// repair only ever raises scores, so it stays put until restored.
		keep.hscore = math.MaxInt64
		heap.Fix(&s.heap, keep.hindex)
	}
	for s.bytes+add > c.perShardBytes {
		if s.heap.Len() == 0 || (s.heap.Len() == 1 && s.heap.items[0] == keep) {
			break
		}
		c.evictMinLocked(s)
	}
	if keep != nil {
		keep.hscore = c.score(keep)
		heap.Fix(&s.heap, keep.hindex)
	}
	return s.bytes+add <= c.perShardBytes
}

// evictMinLocked removes the shard's lowest-score entry in O(log n):
// pop the heap root, lazily repairing roots whose live score has risen
// past the recorded one (read-side touches never lower a score, so a
// root whose recorded score is current really is the minimum).
func (c *shardedCache) evictMinLocked(s *cacheShard) {
	for s.heap.Len() > 0 {
		root := s.heap.items[0]
		if cur := c.score(root); cur > root.hscore {
			root.hscore = cur
			heap.Fix(&s.heap, 0)
			continue
		}
		c.removeLocked(s, root)
		s.evictions++
		return
	}
}

// removeLocked unlinks an entry from the map, heap, and byte account.
func (c *shardedCache) removeLocked(s *cacheShard, e *shardEntry) {
	delete(s.entries, e.key)
	heap.Remove(&s.heap, e.hindex)
	s.bytes -= e.size
}

// Invalidate implements Cache: purge every shard and report the total
// entry count dropped. Purges are per-shard atomic — a concurrent reader
// sees each shard either full or empty, which is enough for the write
// path, where the epoch bump has already retired every live key.
func (c *shardedCache) Invalidate() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.entries = make(map[string]*shardEntry)
		s.heap.items = nil
		s.bytes = 0
		s.mu.Unlock()
	}
	return n
}

func (c *shardedCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

func (c *shardedCache) SizeBytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += s.bytes
		s.mu.RUnlock()
	}
	return n
}

func (c *shardedCache) Stats() CacheStats {
	var out CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		out.Hits += s.hits.Load()
		out.Misses += s.misses.Load()
		s.mu.RLock()
		out.Evictions += s.evictions
		s.mu.RUnlock()
	}
	return out
}

// ShardLoad is one shard's share of the cache, published as service data
// so operators can see skew across the key space.
type ShardLoad struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// ShardLoads reports per-shard statistics, in shard order.
func (c *shardedCache) ShardLoads() []ShardLoad {
	out := make([]ShardLoad, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		out[i].Hits = s.hits.Load()
		out[i].Misses = s.misses.Load()
		s.mu.RLock()
		out[i].Evictions = s.evictions
		out[i].Entries = len(s.entries)
		out[i].Bytes = s.bytes
		s.mu.RUnlock()
	}
	return out
}

// shardLoader is the optional per-shard introspection interface the
// Execution service publishes when the cache supports it.
type shardLoader interface {
	ShardLoads() []ShardLoad
}
