package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
)

func hplWrapper(t *testing.T, n int) mapping.ApplicationWrapper {
	t.Helper()
	w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: n, Seed: 21}))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// fakeFactory counts creations per host without real instances.
type fakeFactory struct {
	host string
	mu   sync.Mutex
	made []string
	fail bool
}

func (f *fakeFactory) CreateExecution(id string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return "", errors.New("factory down")
	}
	f.made = append(f.made, id)
	return gsh.New(f.host, ExecutionType, id).String(), nil
}

func (f *fakeFactory) Host() string { return f.host }

func (f *fakeFactory) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.made)
}

// TestApplicationPortType verifies Table 1: every Application operation is
// published with the paper's semantics and behaves accordingly.
func TestApplicationPortType(t *testing.T) {
	pt := ApplicationPortType()
	wantOps := []string{OpGetAppInfo, OpGetNumExecs, OpGetExecQueryParams, OpGetAllExecs, OpGetExecs}
	have := map[string]bool{}
	for _, op := range pt.Operations {
		have[op.Name] = true
		if op.Doc == "" {
			t.Errorf("operation %s missing semantics documentation", op.Name)
		}
	}
	for _, op := range wantOps {
		if !have[op] {
			t.Errorf("Application PortType missing %s", op)
		}
	}

	f := &fakeFactory{host: "a:1"}
	mgr, err := NewManager(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	app := NewApplicationService(hplWrapper(t, 6), mgr)

	// getAppInfo: name|value pairs.
	info, err := app.Invoke(OpGetAppInfo, nil)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := perfdata.ParseKVs(info)
	if err != nil {
		t.Fatalf("getAppInfo not name|value encoded: %v", err)
	}
	foundName := false
	for _, kv := range kvs {
		if kv.Name == "name" && kv.Value == "HPL" {
			foundName = true
		}
	}
	if !foundName {
		t.Errorf("getAppInfo missing name: %v", info)
	}

	// getNumExecs: integer.
	out, err := app.Invoke(OpGetNumExecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := strconv.Atoi(out[0]); err != nil || n != 6 {
		t.Errorf("getNumExecs = %v", out)
	}

	// getExecQueryParams: attribute|v1|v2|... entries with unique values.
	out, err = app.Invoke(OpGetExecQueryParams, nil)
	if err != nil {
		t.Fatal(err)
	}
	sawNumProcs := false
	for _, row := range out {
		a, err := perfdata.ParseAttribute(row)
		if err != nil {
			t.Fatalf("bad attribute row %q: %v", row, err)
		}
		seen := map[string]bool{}
		for _, v := range a.Values {
			if seen[v] {
				t.Errorf("attribute %s has duplicate value %q", a.Name, v)
			}
			seen[v] = true
		}
		if a.Name == "numprocesses" {
			sawNumProcs = true
		}
	}
	if !sawNumProcs {
		t.Errorf("getExecQueryParams missing numprocesses: %v", out)
	}

	// getAllExecs: properly formatted GSHs, one per execution.
	out, err = app.Invoke(OpGetAllExecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("getAllExecs returned %d handles", len(out))
	}
	for _, h := range out {
		if _, err := gsh.Parse(h); err != nil {
			t.Errorf("getAllExecs returned malformed GSH %q", h)
		}
	}

	// getExecs: subset matching attribute=value.
	out, err = app.Invoke(OpGetExecs, []string{"numprocesses", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("getExecs(numprocesses,2) = %v", out)
	}

	// No match: empty array, not an error.
	out, err = app.Invoke(OpGetExecs, []string{"numprocesses", "777"})
	if err != nil || len(out) != 0 {
		t.Errorf("no-match getExecs: %v, %v", out, err)
	}

	if _, err := app.Invoke("bogus", nil); !errors.Is(err, ogsi.ErrUnknownOperation) {
		t.Errorf("unknown op: %v", err)
	}
}

// TestExecutionPortType verifies Table 2 semantics over a live wrapper.
func TestExecutionPortType(t *testing.T) {
	pt := ExecutionPortType()
	wantOps := []string{OpGetInfo, OpGetFoci, OpGetMetrics, OpGetTypes, OpGetTimeStartEnd, OpGetPR}
	have := map[string]bool{}
	for _, op := range pt.Operations {
		have[op.Name] = true
		if op.Doc == "" {
			t.Errorf("operation %s missing semantics documentation", op.Name)
		}
	}
	for _, op := range wantOps {
		if !have[op] {
			t.Errorf("Execution PortType missing %s", op)
		}
	}

	d := datagen.PrestaRMA(datagen.RMAConfig{Executions: 2, MessageSizes: 4, Seed: 22})
	w := mapping.NewMemory(d)
	ew, err := w.ExecutionWrapper("1")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewExecutionService("1", ew, NewLRU(0), nil)

	// getInfo: name|value pairs including the ID.
	out, err := svc.Invoke(OpGetInfo, nil)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := perfdata.ParseKVs(out)
	if err != nil || kvs[0].Name != "id" || kvs[0].Value != "1" {
		t.Errorf("getInfo = %v (%v)", out, err)
	}

	// Discovery sets: sorted, unique.
	for op, check := range map[string]func([]string) bool{
		OpGetFoci:    func(v []string) bool { return len(v) == 4*len(datagen.RMAOps) },
		OpGetMetrics: func(v []string) bool { return reflect.DeepEqual(v, []string{"bandwidth", "latency"}) },
		OpGetTypes:   func(v []string) bool { return reflect.DeepEqual(v, []string{"presta"}) },
	} {
		vals, err := svc.Invoke(op, nil)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !sort.StringsAreSorted(vals) {
			t.Errorf("%s not sorted: %v", op, vals)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] == vals[i-1] {
				t.Errorf("%s has duplicates: %v", op, vals)
			}
		}
		if !check(vals) {
			t.Errorf("%s = %v", op, vals)
		}
	}

	// getTimeStartEnd: two values.
	out, err = svc.Invoke(OpGetTimeStartEnd, nil)
	if err != nil || len(out) != 2 {
		t.Fatalf("getTimeStartEnd = %v, %v", out, err)
	}
	start, err1 := strconv.ParseFloat(out[0], 64)
	end, err2 := strconv.ParseFloat(out[1], 64)
	if err1 != nil || err2 != nil || end <= start {
		t.Errorf("getTimeStartEnd values: %v", out)
	}

	// getPR with [metric, start, end, type, foci...].
	out, err = svc.Invoke(OpGetPR, []string{"bandwidth", out[0], out[1], "presta"})
	if err != nil {
		t.Fatal(err)
	}
	results, err := perfdata.ParseResults(out)
	if err != nil {
		t.Fatalf("getPR rows unparseable: %v", err)
	}
	if len(results) != 4*len(datagen.RMAOps) {
		t.Errorf("getPR returned %d results", len(results))
	}

	// Malformed getPR params.
	if _, err := svc.Invoke(OpGetPR, []string{"m", "x", "1", "t"}); err == nil {
		t.Error("bad start time accepted")
	}
	if _, err := svc.Invoke(OpGetPR, []string{"m"}); err == nil {
		t.Error("short params accepted")
	}
	if _, err := svc.Invoke("bogus", nil); !errors.Is(err, ogsi.ErrUnknownOperation) {
		t.Errorf("unknown op: %v", err)
	}
}

func TestExecutionServiceCaching(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 23})
	w := mapping.NewMemory(d)
	ew, _ := w.ExecutionWrapper("100")
	cache := NewLRU(0)
	svc := NewExecutionService("100", ew, cache, nil)
	tr, _ := svc.TimeStartEnd()
	q := perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"}

	first, err := svc.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs")
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Logically identical query with reordered foci also hits.
	q2 := q
	q2.Foci = []string{"/"}
	_, _ = svc.PerformanceResults(q2) // different key (explicit focus)
	if got := svc.CacheStats(); got.Misses != 2 {
		t.Errorf("distinct query should miss: %+v", got)
	}
}

func TestExecutionServiceNoCache(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 24})
	w := mapping.NewMemory(d)
	ew, _ := w.ExecutionWrapper("100")
	svc := NewExecutionService("100", ew, nil, nil)
	tr, _ := svc.TimeStartEnd()
	q := perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"}
	if _, err := svc.PerformanceResults(q); err != nil {
		t.Fatal(err)
	}
	if got := svc.CacheStats(); got != (CacheStats{}) {
		t.Errorf("no-cache stats = %+v", got)
	}
}

func TestExecutionServiceDataElements(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 25})
	w := mapping.NewMemory(d)
	ew, _ := w.ExecutionWrapper("100")
	svc := NewExecutionService("100", ew, NewLRU(0), nil)
	sd := svc.ServiceData()
	if sd["executionID"][0] != "100" || sd["caching"][0] != "true" {
		t.Errorf("service data: %v", sd)
	}
	if !reflect.DeepEqual(sd["metrics"], []string{"gflops", "residual", "runtimesec"}) {
		t.Errorf("metrics SDE = %v", sd["metrics"])
	}
	if sd["cachePolicy"][0] != "lru" {
		t.Errorf("cachePolicy SDE = %v", sd["cachePolicy"])
	}
}

func TestNotifyUpdateInvalidates(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 26})
	mem := mapping.NewMemory(d)
	ew, _ := mem.ExecutionWrapper("100")
	cache := NewLRU(0)
	svc := NewExecutionService("100", ew, cache, ogsi.NewNotificationHub(nil))

	tr, _ := svc.TimeStartEnd()
	q := perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"}
	_, _ = svc.PerformanceResults(q)
	if svc.CacheStats().Misses != 1 {
		t.Fatal("prime failed")
	}
	svc.NotifyUpdate("new data")
	_, _ = svc.PerformanceResults(q)
	// After invalidation the fresh cache misses again.
	if svc.CacheStats().Misses != 1 { // fresh cache: 1 miss since rebuild
		t.Errorf("post-invalidate stats = %+v", svc.CacheStats())
	}
}

func TestManagerCachesInstances(t *testing.T) {
	f := &fakeFactory{host: "a:1"}
	m, err := NewManager(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.ExecutionHandles([]string{"1", "2", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if f.count() != 3 {
		t.Errorf("created %d instances", f.count())
	}
	second, err := m.ExecutionHandles([]string{"3", "2", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if f.count() != 3 {
		t.Errorf("re-request created more instances: %d", f.count())
	}
	// Same handles, order matching request order.
	if second[0] != first[2] || second[2] != first[0] {
		t.Errorf("cached handles misordered: %v vs %v", second, first)
	}
	if m.CachedCount() != 3 {
		t.Errorf("CachedCount = %d", m.CachedCount())
	}
}

func TestManagerInterleavesAcrossReplicas(t *testing.T) {
	a := &fakeFactory{host: "a:1"}
	b := &fakeFactory{host: "b:1"}
	m, _ := NewManager(InterleavePolicy{}, a, b)
	ids := make([]string, 32)
	for i := range ids {
		ids[i] = fmt.Sprintf("%d", i+1)
	}
	if _, err := m.ExecutionHandles(ids); err != nil {
		t.Fatal(err)
	}
	// Paper: 16 instances on one host and 16 on the other, interleaved.
	if a.count() != 16 || b.count() != 16 {
		t.Errorf("distribution = %d/%d, want 16/16", a.count(), b.count())
	}
	if a.made[0] != "1" || b.made[0] != "2" || a.made[1] != "3" {
		t.Errorf("not interleaved: a=%v b=%v", a.made[:2], b.made[:2])
	}
	counts := m.PerHostCounts()
	if counts["a:1"] != 16 || counts["b:1"] != 16 {
		t.Errorf("PerHostCounts = %v", counts)
	}
}

func TestManagerPolicies(t *testing.T) {
	ids := []string{"1", "2", "3", "4", "5", "6"}
	if got := (InterleavePolicy{}).Assign(ids, 2); !reflect.DeepEqual(got, []int{0, 1, 0, 1, 0, 1}) {
		t.Errorf("interleave = %v", got)
	}
	if got := (BlockPolicy{}).Assign(ids, 2); !reflect.DeepEqual(got, []int{0, 0, 0, 1, 1, 1}) {
		t.Errorf("block = %v", got)
	}
	h := (HashPolicy{}).Assign(ids, 2)
	for _, r := range h {
		if r < 0 || r > 1 {
			t.Errorf("hash out of range: %v", h)
		}
	}
	// Hash placement is stable.
	if !reflect.DeepEqual(h, (HashPolicy{}).Assign(ids, 2)) {
		t.Error("hash policy unstable")
	}
}

func TestManagerFactoryFailure(t *testing.T) {
	f := &fakeFactory{host: "a:1", fail: true}
	m, _ := NewManager(nil, f)
	if _, err := m.ExecutionHandles([]string{"1"}); err == nil {
		t.Error("factory failure not propagated")
	}
}

func TestManagerForget(t *testing.T) {
	f := &fakeFactory{host: "a:1"}
	m, _ := NewManager(nil, f)
	_, _ = m.ExecutionHandles([]string{"1"})
	m.Forget("1")
	_, _ = m.ExecutionHandles([]string{"1"})
	if f.count() != 2 {
		t.Errorf("Forget did not force re-creation: %d", f.count())
	}
}

func TestManagerRequiresFactory(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Error("no factories: want error")
	}
}

func TestManagerWireProtocol(t *testing.T) {
	f := &fakeFactory{host: "a:1"}
	m, _ := NewManager(nil, f)
	out, err := m.Invoke(OpGetExecutions, []string{"7", "8"})
	if err != nil || len(out) != 2 {
		t.Fatalf("getExecutions: %v, %v", out, err)
	}
	if _, err := m.Invoke("bogus", nil); !errors.Is(err, ogsi.ErrUnknownOperation) {
		t.Errorf("unknown op: %v", err)
	}
	sd := m.ServiceData()
	if sd["policy"][0] != "interleave" || sd["cachedCount"][0] != "2" {
		t.Errorf("service data: %v", sd)
	}
}

func TestManagerConcurrent(t *testing.T) {
	a := &fakeFactory{host: "a:1"}
	b := &fakeFactory{host: "b:1"}
	m, _ := NewManager(nil, a, b)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 20)
			for i := range ids {
				ids[i] = fmt.Sprintf("%d", i)
			}
			if _, err := m.ExecutionHandles(ids); err != nil {
				t.Errorf("handles: %v", err)
			}
		}()
	}
	wg.Wait()
	// Each unique ID created exactly once despite 8 concurrent batches.
	if total := a.count() + b.count(); total != 20 {
		t.Errorf("created %d instances for 20 unique IDs", total)
	}
}

func TestAsyncOutcomeRoundTrip(t *testing.T) {
	rs := []perfdata.Result{
		{Metric: "gflops", Focus: "/", Type: "hpl", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 2.5},
		{Metric: "gflops", Focus: "/", Type: "hpl", Time: perfdata.TimeRange{Start: 1, End: 2}, Value: 2.7},
	}
	id, got, err := DecodeAsyncOutcome(EncodeAsyncOutcome("req-7", rs, nil))
	if err != nil || id != "req-7" {
		t.Fatalf("decode: %q, %v", id, err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("results = %+v", got)
	}
	// Error outcome.
	id, got, err = DecodeAsyncOutcome(EncodeAsyncOutcome("req-8", nil, errors.New("store\noffline")))
	if id != "req-8" || err == nil || got != nil {
		t.Errorf("error outcome: %q, %v, %v", id, got, err)
	}
	if strings.Contains(err.Error(), "\n") == false && !strings.Contains(err.Error(), "offline") {
		t.Errorf("error text lost: %v", err)
	}
	// Malformed messages.
	for _, msg := range []string{"", "justone", "id\nbogus-status"} {
		if _, _, err := DecodeAsyncOutcome(msg); err == nil {
			t.Errorf("DecodeAsyncOutcome(%q): want error", msg)
		}
	}
}

func TestGetPRAsyncWithFakeDialer(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 27})
	w := mapping.NewMemory(d)
	ew, _ := w.ExecutionWrapper("100")
	svc := NewExecutionService("100", ew, nil, nil)

	// Without a dialer the operation is rejected.
	if _, err := svc.Invoke(OpGetPRAsync, []string{"r1", "http://h:1/ogsa/services/Sink/1", "gflops", "0", "1e9", "hpl"}); err == nil {
		t.Fatal("no dialer: want error")
	}

	delivered := make(chan string, 1)
	svc.SetSinkDialer(func(h gsh.Handle) ogsi.Sink {
		return ogsi.SinkFunc(func(topic, msg string) error {
			delivered <- topic + "\x00" + msg
			return nil
		})
	})
	out, err := svc.Invoke(OpGetPRAsync, []string{"r1", "http://h:1/ogsa/services/Sink/1", "gflops", "0", "1e9", "hpl"})
	if err != nil || out[0] != "accepted" {
		t.Fatalf("getPRAsync: %v, %v", out, err)
	}
	svc.FlushAsync()
	msg := <-delivered
	topic, body, _ := strings.Cut(msg, "\x00")
	if topic != AsyncPRTopic {
		t.Errorf("topic = %q", topic)
	}
	id, rs, err := DecodeAsyncOutcome(body)
	if err != nil || id != "r1" || len(rs) != 1 || rs[0].Metric != "gflops" {
		t.Errorf("outcome: %q %v %v", id, rs, err)
	}

	// Validation failures are synchronous.
	bad := [][]string{
		{"r2", "junk-handle", "gflops", "0", "1", "hpl"},                     // bad sink
		{"", "http://h:1/ogsa/services/Sink/1", "gflops", "0", "1", "hpl"},   // empty ID
		{"r3", "http://h:1/ogsa/services/Sink/1", "gflops", "x", "1", "hpl"}, // bad time
		{"r4", "http://h:1/ogsa/services/Sink/1"},                            // short
	}
	for _, params := range bad {
		if _, err := svc.Invoke(OpGetPRAsync, params); err == nil {
			t.Errorf("getPRAsync(%v): want error", params)
		}
	}
}
