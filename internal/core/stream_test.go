package core

import (
	"reflect"
	"testing"

	"pperfgrid/internal/perfdata"
)

// streamExec is an ExecutionWrapper that only answers through the
// streaming interface, to prove the Semantic Layer consumes it.
type streamExec struct {
	results  []perfdata.Result
	streamed int
	direct   int
}

func (s *streamExec) Info() ([]perfdata.KV, error)              { return nil, nil }
func (s *streamExec) Foci() ([]string, error)                   { return nil, nil }
func (s *streamExec) Metrics() ([]string, error)                { return nil, nil }
func (s *streamExec) Types() ([]string, error)                  { return nil, nil }
func (s *streamExec) TimeStartEnd() (perfdata.TimeRange, error) { return perfdata.TimeRange{}, nil }
func (s *streamExec) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	s.direct++
	return s.results, nil
}

func (s *streamExec) StreamPerformanceResults(q perfdata.Query, yield func(perfdata.Result) error) error {
	s.streamed++
	for _, r := range s.results {
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

func TestPerformanceResultsConsumesStream(t *testing.T) {
	want := []perfdata.Result{
		{Metric: "m", Focus: "/", Type: "t", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 1.5},
		{Metric: "m", Focus: "/a", Type: "t", Time: perfdata.TimeRange{Start: 1, End: 2}, Value: 2.5},
	}
	w := &streamExec{results: want}
	svc := NewExecutionService("e1", w, NewLRU(8), nil)
	q := perfdata.Query{Metric: "m", Time: perfdata.TimeRange{Start: 0, End: 10}}

	got, err := svc.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	if w.streamed != 1 || w.direct != 0 {
		t.Errorf("streamed=%d direct=%d, want the streaming path", w.streamed, w.direct)
	}
	// Second call is a cache hit: no further mapping-layer traffic.
	if _, err := svc.PerformanceResults(q); err != nil {
		t.Fatal(err)
	}
	if w.streamed != 1 {
		t.Errorf("cache miss on repeat query: streamed=%d", w.streamed)
	}
}
