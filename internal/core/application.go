package core

import (
	"fmt"
	"strconv"

	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
)

// ManagerRef abstracts how an Application service reaches the Manager —
// in-process for the usual co-located deployment, or over SOAP (the
// Manager is itself a grid service).
type ManagerRef interface {
	ExecutionHandles(ids []string) ([]string, error)
}

// RemoteManagerRef reaches a Manager over its stub.
type RemoteManagerRef struct {
	Call func(op string, params ...string) ([]string, error)
}

// ExecutionHandles implements ManagerRef.
func (r *RemoteManagerRef) ExecutionHandles(ids []string) ([]string, error) {
	return r.Call(OpGetExecutions, ids...)
}

// ApplicationService is the implementation behind one Application grid
// service instance (Table 1). It answers metadata and attribute-discovery
// queries from the Mapping Layer and turns execution-record queries into
// Execution service instances through the Manager, per Figure 3's
// 3a–3i flow.
type ApplicationService struct {
	wrapper mapping.ApplicationWrapper
	manager ManagerRef
}

// NewApplicationService builds an Application service.
func NewApplicationService(w mapping.ApplicationWrapper, m ManagerRef) *ApplicationService {
	return &ApplicationService{wrapper: w, manager: m}
}

// Invoke implements the Application PortType wire protocol.
func (a *ApplicationService) Invoke(op string, params []string) ([]string, error) {
	switch op {
	case OpGetAppInfo:
		info, err := a.wrapper.AppInfo()
		if err != nil {
			return nil, err
		}
		return perfdata.EncodeKVs(info), nil
	case OpGetNumExecs:
		n, err := a.wrapper.NumExecs()
		if err != nil {
			return nil, err
		}
		return []string{strconv.Itoa(n)}, nil
	case OpGetExecQueryParams:
		attrs, err := a.wrapper.ExecQueryParams()
		if err != nil {
			return nil, err
		}
		out := make([]string, len(attrs))
		for i, at := range attrs {
			out[i] = at.Encode()
		}
		return out, nil
	case OpGetAllExecs:
		ids, err := a.wrapper.AllExecIDs()
		if err != nil {
			return nil, err
		}
		return a.handles(ids)
	case OpGetExecs:
		ids, err := a.wrapper.ExecIDs(params[0], params[1])
		if err != nil {
			return nil, err
		}
		return a.handles(ids)
	}
	return nil, fmt.Errorf("%w: %q on Application", ogsi.ErrUnknownOperation, op)
}

// handles forwards unique execution IDs to the Manager, which creates or
// returns cached Execution service instances.
func (a *ApplicationService) handles(ids []string) ([]string, error) {
	if len(ids) == 0 {
		return []string{}, nil
	}
	return a.manager.ExecutionHandles(ids)
}

// ServiceData publishes application metadata as service data elements.
func (a *ApplicationService) ServiceData() map[string][]string {
	out := map[string][]string{}
	if info, err := a.wrapper.AppInfo(); err == nil {
		for _, kv := range info {
			out["app:"+kv.Name] = []string{kv.Value}
		}
	}
	if n, err := a.wrapper.NumExecs(); err == nil {
		out["numExecs"] = []string{strconv.Itoa(n)}
	}
	return out
}
