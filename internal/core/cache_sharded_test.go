package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// rsN builds a result list of n values with string fields sized for byte
// accounting tests.
func rsN(n int, v float64) []perfdata.Result {
	out := make([]perfdata.Result, n)
	for i := range out {
		out[i] = perfdata.Result{
			Metric: "func_calls", Focus: fmt.Sprintf("/Process/%d", i), Type: "vampir",
			Time: perfdata.TimeRange{Start: 0, End: 1}, Value: v,
		}
	}
	return out
}

func TestShardedPolicyScenarios(t *testing.T) {
	oneShard := func(policy string, capacity int) Cache {
		return NewCacheFromConfig(CacheConfig{Policy: policy, MaxEntries: capacity, Shards: 1})
	}
	t.Run("lru evicts least recent", func(t *testing.T) {
		c := oneShard("lru", 2)
		c.Put("a", rs(1), 0)
		c.Put("b", rs(2), 0)
		c.Get("a")
		c.Put("c", rs(3), 0)
		if _, ok := c.Get("b"); ok {
			t.Error("b should have been evicted")
		}
		if _, ok := c.Get("a"); !ok {
			t.Error("a should have survived")
		}
	})
	t.Run("lfu evicts least frequent", func(t *testing.T) {
		c := oneShard("lfu", 2)
		c.Put("hot", rs(1), 0)
		c.Put("cold", rs(2), 0)
		for i := 0; i < 5; i++ {
			c.Get("hot")
		}
		c.Put("new", rs(3), 0)
		if _, ok := c.Get("cold"); ok {
			t.Error("cold should have been evicted")
		}
		if _, ok := c.Get("hot"); !ok {
			t.Error("hot should have survived")
		}
	})
	t.Run("cost keeps expensive", func(t *testing.T) {
		c := oneShard("cost", 2)
		c.Put("cheap", rs(1), time.Millisecond)
		c.Put("expensive", rs(2), time.Minute)
		c.Put("new", rs(3), time.Second)
		if _, ok := c.Get("expensive"); !ok {
			t.Error("expensive entry evicted despite cost-aware policy")
		}
		if _, ok := c.Get("cheap"); ok {
			t.Error("cheap entry survived over expensive")
		}
	})
	t.Run("shards reported", func(t *testing.T) {
		c := NewCacheFromConfig(CacheConfig{Policy: "lru", Shards: 8})
		if got := c.(*shardedCache).Shards(); got != 8 {
			t.Errorf("shards = %d", got)
		}
		// Shard counts round down to a power of two and clamp to capacity.
		c = NewCacheFromConfig(CacheConfig{Policy: "lru", MaxEntries: 5, Shards: 16})
		if got := c.(*shardedCache).Shards(); got != 4 {
			t.Errorf("clamped shards = %d", got)
		}
	})
}

// TestCacheDifferentialShardedVsSingleLock drives a single-shard sharded
// cache and the retained single-lock implementation through the same
// randomized operation sequence and pins identical hit/miss outcomes,
// stats, entry counts, and byte accounting for every policy — the sharded
// rebuild must be behaviourally indistinguishable at one shard.
func TestCacheDifferentialShardedVsSingleLock(t *testing.T) {
	for _, policy := range []string{"lru", "lfu", "cost"} {
		for _, capacity := range []int{2, 5, 16} {
			t.Run(fmt.Sprintf("%s/cap=%d", policy, capacity), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(42 + capacity)))
				oracle := NewCacheFromConfig(CacheConfig{Policy: policy, MaxEntries: capacity, SingleLock: true})
				sharded := NewCacheFromConfig(CacheConfig{Policy: policy, MaxEntries: capacity, Shards: 1})
				keys := make([]string, 24)
				for i := range keys {
					keys[i] = fmt.Sprintf("metric%d|/Process/%d|UNDEFINED|0.0-1.0", i, i)
				}
				for op := 0; op < 4000; op++ {
					k := keys[rng.Intn(len(keys))]
					switch rng.Intn(10) {
					case 0, 1, 2: // Put with a distinct cost per op
						payload := rsN(1+rng.Intn(4), float64(op))
						cost := time.Duration(op*7919 + 1)
						oracle.Put(k, payload, cost)
						sharded.Put(k, payload, cost)
					case 3: // AttachWire
						wire := make([]byte, 8+rng.Intn(64))
						oracle.AttachWire(k, wire)
						sharded.AttachWire(k, wire)
					case 4: // GetWire
						_, a := oracle.GetWire(k)
						_, b := sharded.GetWire(k)
						if a != b {
							t.Fatalf("op %d: GetWire(%q) diverged: oracle=%v sharded=%v", op, k, a, b)
						}
					default: // Get
						ra, a := oracle.Get(k)
						rb, b := sharded.Get(k)
						if a != b {
							t.Fatalf("op %d: Get(%q) diverged: oracle=%v sharded=%v", op, k, a, b)
						}
						if a && !reflect.DeepEqual(ra, rb) {
							t.Fatalf("op %d: Get(%q) results diverged", op, k)
						}
					}
					if oracle.Len() != sharded.Len() {
						t.Fatalf("op %d: Len diverged: oracle=%d sharded=%d", op, oracle.Len(), sharded.Len())
					}
					if oracle.SizeBytes() != sharded.SizeBytes() {
						t.Fatalf("op %d: SizeBytes diverged: oracle=%d sharded=%d", op, oracle.SizeBytes(), sharded.SizeBytes())
					}
					if oa, sa := oracle.Stats(), sharded.Stats(); oa != sa {
						t.Fatalf("op %d: stats diverged: oracle=%+v sharded=%+v", op, oa, sa)
					}
				}
			})
		}
	}
}

// TestCacheByteBudget pins the byte-budget invariant: across every policy
// and shard layout, the total footprint of cached entries — decoded
// results plus attached wire envelopes — never exceeds the configured
// budget, under randomized Put/Get/AttachWire traffic.
func TestCacheByteBudget(t *testing.T) {
	const budget = 64 << 10
	for _, policy := range []string{"lru", "lfu", "cost"} {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy, shards), func(t *testing.T) {
				c := NewCacheFromConfig(CacheConfig{Policy: policy, MaxBytes: budget, Shards: shards})
				rng := rand.New(rand.NewSource(7))
				for op := 0; op < 3000; op++ {
					k := fmt.Sprintf("q%d|/Process/%d|vampir|0.0-1.0", rng.Intn(200), op%8)
					switch rng.Intn(4) {
					case 0:
						c.AttachWire(k, make([]byte, rng.Intn(2048)))
					case 1:
						c.Get(k)
					default:
						c.Put(k, rsN(1+rng.Intn(20), float64(op)), time.Duration(1+rng.Intn(1000)))
					}
					if got := c.SizeBytes(); got > budget {
						t.Fatalf("op %d: cached bytes %d exceed budget %d", op, got, budget)
					}
				}
				if c.Stats().Evictions == 0 {
					t.Error("workload never evicted; budget untested")
				}
			})
		}
	}
}

// TestCacheByteBudgetOversized: an entry that alone exceeds the budget is
// not cached, and an envelope that cannot fit next to its results is
// dropped while the decoded results stay cached.
func TestCacheByteBudgetOversized(t *testing.T) {
	small := rsN(2, 1)
	budget := EntryFootprint("k", small, nil) + 128
	c := NewCacheFromConfig(CacheConfig{Policy: "lru", MaxBytes: budget, Shards: 1})

	c.Put("huge", rsN(1000, 1), time.Second)
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry was cached")
	}
	c.Put("k", small, time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fitting entry not cached")
	}
	c.AttachWire("k", make([]byte, budget)) // cannot fit next to results
	if _, ok := c.GetWire("k"); ok {
		t.Error("unfittable wire envelope was attached")
	}
	if _, ok := c.Get("k"); !ok {
		t.Error("decoded results lost when wire attach was rejected")
	}
	c.AttachWire("k", make([]byte, 64)) // fits
	if _, ok := c.GetWire("k"); !ok {
		t.Error("fitting wire envelope not attached")
	}
	if got := c.SizeBytes(); got > budget {
		t.Errorf("bytes %d exceed budget %d", got, budget)
	}
}

// TestCacheByteBudgetOversizedDoesNotFlush: an addition that can never
// fit is refused up front — it must not evict the whole shard on its way
// to failing.
func TestCacheByteBudgetOversizedDoesNotFlush(t *testing.T) {
	payload := rsN(2, 1)
	budget := 4*EntryFootprint("k0", payload, nil) + 64
	for _, cfg := range []CacheConfig{
		{Policy: "lru", MaxBytes: budget, Shards: 1},
		// Both caps at once: the entry-count eviction must not fire for
		// a Put the byte budget can never store.
		{Policy: "lru", MaxBytes: budget, MaxEntries: 4, Shards: 1},
	} {
		c := NewCacheFromConfig(cfg)
		for i := 0; i < 4; i++ {
			c.Put(fmt.Sprintf("k%d", i), payload, time.Second)
		}
		if c.Len() != 4 {
			t.Fatalf("prefill Len = %d", c.Len())
		}
		c.Put("huge", rsN(1000, 1), time.Second) // exceeds the whole budget
		if c.Len() != 4 {
			t.Errorf("entries=%d: oversized Put flushed the shard: Len = %d", cfg.MaxEntries, c.Len())
		}
		c.AttachWire("k0", make([]byte, budget)) // can never fit next to k0
		if c.Len() != 4 {
			t.Errorf("entries=%d: oversized AttachWire flushed the shard: Len = %d", cfg.MaxEntries, c.Len())
		}
		if c.Stats().Evictions != 0 {
			t.Errorf("entries=%d: infeasible additions evicted %d entries", cfg.MaxEntries, c.Stats().Evictions)
		}
	}
}

// TestCacheByteBudgetEvictsForWire: attaching an envelope evicts other
// entries to make room but never the entry being attached to.
func TestCacheByteBudgetEvictsForWire(t *testing.T) {
	payload := rsN(4, 1)
	one := EntryFootprint("k0", payload, nil)
	budget := 3 * one
	c := NewCacheFromConfig(CacheConfig{Policy: "lru", MaxBytes: budget, Shards: 1})
	c.Put("k0", payload, time.Second)
	c.Put("k1", payload, time.Second)
	c.Put("k2", payload, time.Second)
	// k0 is the LRU victim candidate, but it is the attach target: room
	// must come from k1 instead.
	c.AttachWire("k0", make([]byte, int(one)))
	if _, ok := c.GetWire("k0"); !ok {
		t.Fatal("wire not attached")
	}
	if _, ok := cacheGetQuiet(c, "k1"); ok {
		t.Error("expected k1 evicted to fit k0's envelope")
	}
	if got := c.SizeBytes(); got > budget {
		t.Errorf("bytes %d exceed budget %d", got, budget)
	}
}

// TestCacheStressConcurrent hammers both implementations with concurrent
// readers, writers, wire attachments, and eviction churn under -race, and
// checks the capacity invariants afterwards.
func TestCacheStressConcurrent(t *testing.T) {
	const (
		capacity = 64
		budget   = 32 << 10
	)
	configs := []CacheConfig{
		{MaxEntries: capacity, SingleLock: true},
		{MaxEntries: capacity},
		{MaxBytes: budget},
		{MaxEntries: capacity, MaxBytes: budget},
	}
	for _, policy := range []string{"lru", "lfu", "cost"} {
		for _, base := range configs {
			cfg := base
			cfg.Policy = policy
			name := fmt.Sprintf("%s/entries=%d/bytes=%d/single=%v", policy, cfg.MaxEntries, cfg.MaxBytes, cfg.SingleLock)
			t.Run(name, func(t *testing.T) {
				if cfg.SingleLock && cfg.MaxBytes > 0 {
					t.Skip("single-lock cache has no byte budget")
				}
				c := NewCacheFromConfig(cfg)
				var wg sync.WaitGroup
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(w)))
						for i := 0; i < 400; i++ {
							k := fmt.Sprintf("k%d", rng.Intn(128))
							switch rng.Intn(6) {
							case 0:
								c.Put(k, rsN(1+rng.Intn(8), float64(i)), time.Duration(1+rng.Intn(500)))
							case 1:
								c.AttachWire(k, make([]byte, rng.Intn(256)))
							case 2:
								c.GetWire(k)
							default:
								if _, ok := c.Get(k); !ok {
									c.Put(k, rsN(1, float64(i)), time.Duration(i+1))
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if cfg.MaxEntries > 0 && c.Len() > cfg.MaxEntries {
					t.Errorf("entries %d exceed capacity %d", c.Len(), cfg.MaxEntries)
				}
				if cfg.MaxBytes > 0 && c.SizeBytes() > cfg.MaxBytes {
					t.Errorf("bytes %d exceed budget %d", c.SizeBytes(), cfg.MaxBytes)
				}
			})
		}
	}
}

// TestCacheResultAliasing pins the sharing contract: a result slice
// handed out by Get stays intact when its entry is evicted or replaced —
// paged cursors and clients hold those slices long after the lookup.
func TestCacheResultAliasing(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{Policy: "lru", MaxEntries: 1, SingleLock: true},
		{Policy: "lru", MaxEntries: 1},
	} {
		t.Run(fmt.Sprintf("single=%v", cfg.SingleLock), func(t *testing.T) {
			c := NewCacheFromConfig(cfg)
			original := rsN(4, 1)
			snapshot := make([]perfdata.Result, len(original))
			copy(snapshot, original)

			c.Put("k", original, time.Second)
			held, ok := c.Get("k")
			if !ok {
				t.Fatal("miss after Put")
			}
			c.Put("other", rsN(2, 2), time.Second) // evicts k (capacity 1)
			c.Put("k", rsN(4, 99), time.Second)    // re-inserts k with new results
			c.Put("k", rsN(1, -1), time.Second)    // overwrites in place
			if !reflect.DeepEqual(held, snapshot) {
				t.Errorf("held slice mutated by eviction/Put: %+v", held)
			}
			fresh, ok := c.Get("k")
			if !ok || len(fresh) != 1 || fresh[0].Value != -1 {
				t.Errorf("current entry wrong: %+v ok=%v", fresh, ok)
			}
		})
	}
}

// TestExecutionCacheAccounting pins exact hit/miss counts for the three
// logical lookup sequences of the wire path — miss, wire hit, and a
// decoded-only hit that falls back from GetWire to Get — so no sequence
// is double-counted across the GetWire→Get fallback.
func TestExecutionCacheAccounting(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 4, Seed: 1})
	w := mapping.NewMemory(d)
	site, err := StartSite(SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	id := d.Execs[0].ID
	handles, err := site.Manager().ExecutionHandles([]string{id})
	if err != nil {
		t.Fatal(err)
	}
	stub, err := container.DialString(handles[0])
	if err != nil {
		t.Fatal(err)
	}
	svc := site.ExecutionServices(id)[0]
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	wire := func() {
		t.Helper()
		if _, err := stub.Call(OpGetPR, q.WireParams()...); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(step string, hits, misses int64) {
		t.Helper()
		if s := svc.CacheStats(); s.Hits != hits || s.Misses != misses {
			t.Fatalf("%s: stats = %+v, want hits=%d misses=%d", step, s, hits, misses)
		}
	}

	wire() // cold: GetWire absent (uncounted), Get misses once
	expect("miss", 0, 1)
	wire() // wire hit: counted once inside GetWire
	expect("wire hit", 1, 1)
	wire()
	expect("second wire hit", 2, 1)
	if _, err := svc.PerformanceResults(q); err != nil { // local decoded hit
		t.Fatal(err)
	}
	expect("local hit", 3, 1)

	// A decoded-only entry (cached via the local path, never encoded):
	// the wire lookup falls back from GetWire to Get and counts one hit.
	q2 := perfdata.Query{Metric: "residual", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	if _, err := svc.PerformanceResults(q2); err != nil {
		t.Fatal(err)
	}
	expect("local miss", 3, 2)
	if _, err := stub.Call(OpGetPR, q2.WireParams()...); err != nil {
		t.Fatal(err)
	}
	expect("decoded-only wire lookup", 4, 2)
	if _, err := stub.Call(OpGetPR, q2.WireParams()...); err != nil {
		t.Fatal(err)
	}
	expect("now a wire hit", 5, 2)
}

// TestShardedServiceData: the Execution service publishes byte and
// per-shard cache statistics for the sharded cache.
func TestShardedServiceData(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 5})
	ew, _ := mapping.NewMemory(d).ExecutionWrapper("100")
	svc := NewExecutionService("100", ew, NewCacheFromConfig(CacheConfig{Policy: "cost", Shards: 4}), nil)
	tr, _ := svc.TimeStartEnd()
	q := perfdata.Query{Metric: "gflops", Time: tr, Type: "hpl"}
	if _, err := svc.PerformanceResults(q); err != nil {
		t.Fatal(err)
	}
	sd := svc.ServiceData()
	if sd["cacheShards"][0] != "4" {
		t.Errorf("cacheShards = %v", sd["cacheShards"])
	}
	if len(sd["cacheShardLoads"]) != 4 {
		t.Errorf("cacheShardLoads = %v", sd["cacheShardLoads"])
	}
	if sd["cacheBytes"][0] == "0" {
		t.Errorf("cacheBytes = %v after a fill", sd["cacheBytes"])
	}
	if sd["cacheEntries"][0] != "1" {
		t.Errorf("cacheEntries = %v", sd["cacheEntries"])
	}
}
