package core

import (
	"strconv"
	"testing"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
)

func startHPLSite(t *testing.T, execs, replicas int) *Site {
	t.Helper()
	d := datagen.HPL(datagen.HPLConfig{Executions: execs, Seed: 31})
	wrappers := make([]mapping.ApplicationWrapper, replicas)
	for i := range wrappers {
		w, err := mapping.NewWideTable(d)
		if err != nil {
			t.Fatal(err)
		}
		wrappers[i] = w
	}
	site, err := StartSite(SiteConfig{AppName: "HPL", Wrappers: wrappers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// TestSiteFigure3Flow walks the paper's Figure 3 component-interaction
// sequence over real SOAP: bind to the Application factory (2a), create an
// Application instance (2b, 2c), query it for Executions (3a–3i), bind to
// the Execution instances and query Performance Results (4a–4f).
func TestSiteFigure3Flow(t *testing.T) {
	site := startHPLSite(t, 10, 1)

	// 2a–2c: create an Application service instance through the factory.
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, err := factory.CreateService()
	if err != nil {
		t.Fatal(err)
	}

	// 3a: query the Application for Executions matching an attribute.
	handles, err := app.Call(OpGetExecs, "numprocesses", "2")
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) == 0 {
		t.Fatal("no executions matched")
	}

	// 4a–4f: bind to an Execution instance and query Performance Results.
	exec, err := container.DialString(handles[0])
	if err != nil {
		t.Fatal(err)
	}
	tse, err := exec.Call(OpGetTimeStartEnd)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Call(OpGetPR, "gflops", tse[0], tse[1], "hpl")
	if err != nil {
		t.Fatal(err)
	}
	results, err := perfdata.ParseResults(out)
	if err != nil || len(results) != 1 {
		t.Fatalf("results = %v (%v)", out, err)
	}
	if results[0].Metric != "gflops" {
		t.Errorf("metric = %q", results[0].Metric)
	}

	// The Manager cached the instances: re-querying returns identical
	// handles without new instance creation.
	before := site.Manager().CachedCount()
	handles2, err := app.Call(OpGetExecs, "numprocesses", "2")
	if err != nil {
		t.Fatal(err)
	}
	if handles2[0] != handles[0] {
		t.Error("re-query returned a different instance handle")
	}
	if site.Manager().CachedCount() != before {
		t.Error("re-query created new instances")
	}
}

func TestSiteGetAllExecsAndInfo(t *testing.T) {
	site := startHPLSite(t, 5, 1)
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, err := factory.CreateService()
	if err != nil {
		t.Fatal(err)
	}
	n, err := app.Call(OpGetNumExecs)
	if err != nil || n[0] != "5" {
		t.Fatalf("getNumExecs = %v, %v", n, err)
	}
	handles, err := app.Call(OpGetAllExecs)
	if err != nil || len(handles) != 5 {
		t.Fatalf("getAllExecs = %d handles, %v", len(handles), err)
	}
	exec, err := container.DialString(handles[0])
	if err != nil {
		t.Fatal(err)
	}
	info, err := exec.Call(OpGetInfo)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := perfdata.ParseKVs(info)
	if err != nil || kvs[0].Name != "id" {
		t.Errorf("getInfo = %v (%v)", info, err)
	}
}

func TestSiteReplicaDistribution(t *testing.T) {
	site := startHPLSite(t, 8, 2)
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, err := factory.CreateService()
	if err != nil {
		t.Fatal(err)
	}
	handles, err := app.Call(OpGetAllExecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 8 {
		t.Fatalf("handles = %d", len(handles))
	}
	counts := site.Manager().PerHostCounts()
	hosts := site.Hosts()
	if counts[hosts[0]] != 4 || counts[hosts[1]] != 4 {
		t.Errorf("distribution = %v, want 4/4 across %v", counts, hosts)
	}
	// Each handle is callable on whichever replica hosts it.
	for _, h := range handles {
		exec, err := container.DialString(h)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Call(OpGetMetrics); err != nil {
			t.Errorf("call on %s: %v", h, err)
		}
	}
}

func TestSiteCachingToggles(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 2, Seed: 32})
	w, err := mapping.NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	site, err := StartSite(SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}, CachingOff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, _ := factory.CreateService()
	handles, err := app.Call(OpGetAllExecs)
	if err != nil {
		t.Fatal(err)
	}
	exec, _ := container.DialString(handles[0])
	// The caching SDE reflects the configuration.
	caching, err := exec.Call(ogsi.OpFindServiceData, "caching")
	if err != nil || caching[0] != "false" {
		t.Errorf("caching SDE = %v, %v", caching, err)
	}
}

func TestSiteServiceDataPathQueryOverWire(t *testing.T) {
	site := startHPLSite(t, 2, 1)
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, _ := factory.CreateService()
	handles, _ := app.Call(OpGetAllExecs)
	exec, _ := container.DialString(handles[0])

	// Future-work XPath-style query of service data elements.
	metrics, err := exec.Call(ogsi.OpFindServiceData, "/metrics")
	if err != nil || len(metrics) != 3 {
		t.Fatalf("/metrics = %v, %v", metrics, err)
	}
	count, err := exec.Call(ogsi.OpFindServiceData, "/metrics/count()")
	if err != nil || count[0] != "3" {
		t.Errorf("/metrics/count() = %v, %v", count, err)
	}
	probe, err := exec.Call(ogsi.OpFindServiceData, "/metrics[value=gflops]")
	if err != nil || len(probe) != 1 {
		t.Errorf("/metrics[value=gflops] = %v, %v", probe, err)
	}
}

func TestSiteNotifications(t *testing.T) {
	d := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 33})
	w, err := mapping.NewWideTable(d)
	if err != nil {
		t.Fatal(err)
	}
	site, err := StartSite(SiteConfig{
		AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}, Notifications: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	factory := container.Dial(site.ApplicationFactoryHandle())
	app, _ := factory.CreateService()
	handles, _ := app.Call(OpGetAllExecs)
	exec, _ := container.DialString(handles[0])

	// The client hosts a sink in its own container.
	clientCont := container.New(ogsi.NewHosting("x:0"), container.Options{})
	if err := clientCont.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer clientCont.Close()
	got := make(chan string, 1)
	sinkIn, err := container.DeploySink(clientCont.Hosting(), ogsi.SinkFunc(func(topic, msg string) error {
		got <- topic + "|" + msg
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Call(ogsi.OpSubscribe, UpdatesTopic, sinkIn.Handle().String()); err != nil {
		t.Fatal(err)
	}

	site.NotifyUpdate("100", "run extended")
	select {
	case msg := <-got:
		if msg != UpdatesTopic+"|run extended" {
			t.Errorf("got %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update notification never arrived")
	}
}

func TestSiteLifetimeManagement(t *testing.T) {
	site := startHPLSite(t, 2, 1)
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, _ := factory.CreateService()
	handles, _ := app.Call(OpGetAllExecs)
	exec, _ := container.DialString(handles[0])

	// Client sets a termination time and destroys early — the OGSI
	// lifetime model over the wire.
	if _, err := exec.Call(ogsi.OpSetTerminationTime, "+3600"); err != nil {
		t.Fatal(err)
	}
	if err := exec.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Call(OpGetMetrics); err == nil {
		t.Error("destroyed instance still answering")
	}
}

func TestSiteValidation(t *testing.T) {
	if _, err := StartSite(SiteConfig{AppName: "X"}); err == nil {
		t.Error("no wrappers: want error")
	}
	if _, err := StartSite(SiteConfig{Wrappers: []mapping.ApplicationWrapper{&mapping.Memory{}}}); err == nil {
		t.Error("no name: want error")
	}
}

func TestSiteExecutionFactoryValidatesParams(t *testing.T) {
	site := startHPLSite(t, 2, 1)
	// Calling the Execution factory directly with bad params faults.
	ref := NewRemoteFactoryRef(site.PrimaryHost())
	if _, err := ref.CreateExecution(""); err == nil {
		t.Error("empty execution ID accepted")
	}
	if _, err := ref.CreateExecution("does-not-exist"); err == nil {
		t.Error("unknown execution ID accepted")
	}
	if _, err := ref.CreateExecution("100"); err != nil {
		t.Errorf("valid ID rejected: %v", err)
	}
}

func TestRemoteManagerRef(t *testing.T) {
	site := startHPLSite(t, 3, 1)
	// Reach the Manager as a grid service, the way a remote Application
	// instance would.
	mgrStub := container.Dial(gsh.Persistent(site.PrimaryHost(), ManagerType))
	ref := &RemoteManagerRef{Call: mgrStub.Call}
	handles, err := ref.ExecutionHandles([]string{"100", "101"})
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 2 {
		t.Errorf("handles = %v", handles)
	}
	if strconv.Itoa(site.Manager().CachedCount()) != "2" {
		t.Errorf("cached = %d", site.Manager().CachedCount())
	}
}

// TestCacheKeyCanonicalizationOverWire reorders the foci of a logically
// identical getPR and requires the second call to hit the instance cache —
// the query-key canonicalization working through the full SOAP stack.
func TestCacheKeyCanonicalizationOverWire(t *testing.T) {
	d := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 2, TimeBins: 2, Seed: 34})
	w, err := mapping.NewStar(d)
	if err != nil {
		t.Fatal(err)
	}
	site, err := StartSite(SiteConfig{AppName: "SMG98", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	factory := container.Dial(site.ApplicationFactoryHandle())
	app, _ := factory.CreateService()
	handles, err := app.Call(OpGetAllExecs)
	if err != nil {
		t.Fatal(err)
	}
	exec, _ := container.DialString(handles[0])

	fociA := []string{"/Process/0", "/Process/1"}
	fociB := []string{"/Process/1", "/Process/0"}
	call := func(foci []string) []string {
		params := append([]string{"func_calls", "0", "1000", "vampir"}, foci...)
		out, err := exec.Call(OpGetPR, params...)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := call(fociA)
	second := call(fociB)
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("result sizes differ: %d vs %d", len(first), len(second))
	}
	svcs := site.ExecutionServices(d.Execs[0].ID)
	if len(svcs) != 1 {
		t.Fatalf("services = %d", len(svcs))
	}
	stats := svcs[0].CacheStats()
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit + 1 miss (reordered foci share a key)", stats)
	}
}
