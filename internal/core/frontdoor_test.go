package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pperfgrid/internal/container"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// countingExecutionWrapper counts Mapping-Layer fetches. It deliberately
// exposes only the plain ExecutionWrapper interface (no ResultAppender /
// ResultStreamer), so every fetch funnels through PerformanceResults.
type countingExecutionWrapper struct {
	mapping.ExecutionWrapper
	calls atomic.Int64
}

func (c *countingExecutionWrapper) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	c.calls.Add(1)
	return c.ExecutionWrapper.PerformanceResults(q)
}

func frontdoorService(t *testing.T) (*ExecutionService, *countingExecutionWrapper, perfdata.Query) {
	t.Helper()
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 8, Seed: 21})
	m := mapping.NewMemory(rma)
	inner, err := m.ExecutionWrapper(rma.Execs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	cw := &countingExecutionWrapper{ExecutionWrapper: inner}
	svc := NewExecutionService(rma.Execs[0].ID, cw, NewCacheFromConfig(CacheConfig{}), nil)
	q := perfdata.Query{Metric: "bandwidth", Time: rma.Execs[0].Time, Type: perfdata.UndefinedType}
	return svc, cw, q
}

// TestExpiredContextNeverReachesMapping pins the deadline boundary at the
// Mapping Layer: a request whose context is already expired is turned
// away — on the plain, paged, and raw read paths — without a single
// store fetch.
func TestExpiredContextNeverReachesMapping(t *testing.T) {
	svc, cw, q := frontdoorService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := svc.InvokeContext(ctx, OpGetPR, q.WireParams()); !errors.Is(err, context.Canceled) {
		t.Errorf("InvokeContext: %v, want context.Canceled", err)
	}
	if _, _, err := svc.InvokePagedContext(ctx, OpGetPR, q.WireParams(), "", 2); !errors.Is(err, context.Canceled) {
		t.Errorf("InvokePagedContext: %v, want context.Canceled", err)
	}
	if _, _, err := svc.InvokeRawContext(ctx, OpGetPR, q.WireParams()); !errors.Is(err, context.Canceled) {
		t.Errorf("InvokeRawContext: %v, want context.Canceled", err)
	}
	if got := cw.calls.Load(); got != 0 {
		t.Fatalf("Mapping-Layer fetches = %d, want 0 for expired requests", got)
	}

	// The same query with a live context fetches exactly once.
	if _, err := svc.InvokeContext(context.Background(), OpGetPR, q.WireParams()); err != nil {
		t.Fatal(err)
	}
	if got := cw.calls.Load(); got != 1 {
		t.Errorf("Mapping-Layer fetches = %d, want 1", got)
	}
}

// TestSingleflightFollowerAbandonsWithoutOrphan pins the coalescing
// contract under deadlines: a follower whose context expires abandons its
// wait immediately, while the undisturbed leader completes, fills the
// cache, and retires the flight — no orphaned flights, no half-filled
// entries, no duplicate fetch.
func TestSingleflightFollowerAbandonsWithoutOrphan(t *testing.T) {
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 8, Seed: 22})
	m := mapping.NewMemory(rma)
	inner, err := m.ExecutionWrapper(rma.Execs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	cw := &countingExecutionWrapper{ExecutionWrapper: inner}
	g := &gatedWrapper{ExecutionWrapper: cw, entered: make(chan struct{}, 4), gate: make(chan struct{})}
	svc := NewExecutionService(rma.Execs[0].ID, g, NewCacheFromConfig(CacheConfig{}), nil)
	q := perfdata.Query{Metric: "bandwidth", Time: rma.Execs[0].Time, Type: perfdata.UndefinedType}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := svc.InvokeContext(context.Background(), OpGetPR, q.WireParams())
		leaderDone <- err
	}()
	<-g.entered // the leader is inside the Mapping Layer, flight open

	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := svc.InvokeContext(fctx, OpGetPR, q.WireParams())
		followerDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for svc.CoalescedQueries() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if svc.CoalescedQueries() != 1 {
		t.Fatalf("coalesced = %d, want 1 (follower joined the flight)", svc.CoalescedQueries())
	}

	fcancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower did not abandon its wait on context expiry")
	}

	// The leader was not disturbed: it completes and fills the cache.
	close(g.gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if got := cw.calls.Load(); got != 1 {
		t.Errorf("Mapping-Layer fetches = %d, want 1", got)
	}

	// No orphaned flight survives the leader's retirement.
	svc.flightMu.Lock()
	open := len(svc.flights)
	svc.flightMu.Unlock()
	if open != 0 {
		t.Errorf("open flights after completion = %d, want 0", open)
	}

	// The filled entry serves a repeat query with no further fetch — the
	// gate would otherwise block this call forever.
	if _, err := svc.InvokeContext(context.Background(), OpGetPR, q.WireParams()); err != nil {
		t.Fatal(err)
	}
	if got := cw.calls.Load(); got != 1 {
		t.Errorf("Mapping-Layer fetches after cached repeat = %d, want 1", got)
	}
}

// TestCursorBudgetsEvict pins the paged-cursor backpressure budgets:
// the live-cursor table evicts oldest-first past the entry budget,
// evicts by byte budget, and reclaims idle cursors past their TTL —
// with every eviction counted.
func TestCursorBudgetsEvict(t *testing.T) {
	svc, _, q := frontdoorService(t)
	var mu timeSource
	mu.now = time.Unix(1000, 0)
	svc.SetCursorClock(mu.Now)
	svc.SetCursorBudget(2, 0, 60*time.Second)

	open := func() string {
		t.Helper()
		rs, next, err := svc.InvokePaged(OpGetPR, q.WireParams(), "", 1)
		if err != nil {
			t.Fatal(err)
		}
		if next == "" || len(rs) != 1 {
			t.Fatalf("paged open: %d values, cursor %q; want 1 value and a live cursor", len(rs), next)
		}
		return next
	}

	curA := open()
	curB := open()
	if entries, _, ev := svc.CursorStats(); entries != 2 || ev != 0 {
		t.Fatalf("after two opens: entries=%d evictions=%d, want 2, 0", entries, ev)
	}

	// Third open exceeds the 2-entry budget: the oldest cursor goes.
	curC := open()
	if entries, _, ev := svc.CursorStats(); entries != 2 || ev != 1 {
		t.Fatalf("after third open: entries=%d evictions=%d, want 2, 1", entries, ev)
	}
	if _, _, err := svc.InvokePaged(OpGetPR, nil, curA, 1); err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Fatalf("evicted cursor continuation: %v, want unknown-or-expired error", err)
	}

	// A continuation refreshes B's TTL...
	if _, _, err := svc.InvokePaged(OpGetPR, nil, curB, 1); err != nil {
		t.Fatalf("live cursor continuation: %v", err)
	}
	// ...then both survivors idle past the TTL and are reclaimed.
	mu.now = mu.now.Add(61 * time.Second)
	if _, _, err := svc.InvokePaged(OpGetPR, nil, curC, 1); err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Fatalf("TTL-expired cursor continuation: %v, want unknown-or-expired error", err)
	}
	if entries, bytes, ev := svc.CursorStats(); entries != 0 || bytes != 0 || ev != 3 {
		t.Fatalf("after TTL sweep: entries=%d bytes=%d evictions=%d, want 0, 0, 3", entries, bytes, ev)
	}

	// Byte budget: room for exactly one cursor's footprint evicts the
	// elder when a second opens.
	curD := open()
	_, bytesD, _ := svc.CursorStats()
	svc.SetCursorBudget(100, bytesD, 0)
	open()
	if entries, _, ev := svc.CursorStats(); entries != 1 || ev != 4 {
		t.Fatalf("after byte-budget open: entries=%d evictions=%d, want 1, 4", entries, ev)
	}
	if _, _, err := svc.InvokePaged(OpGetPR, nil, curD, 1); err == nil {
		t.Fatal("byte-evicted cursor still live")
	}
}

// timeSource is a settable test clock.
type timeSource struct{ now time.Time }

func (s *timeSource) Now() time.Time { return s.now }

// TestDrainReleasesCursorsAndGoroutines pins the drain end state: a site
// with live (abandoned) cursors drains to an empty cursor table and
// returns to the pre-site goroutine count — the leak-freedom the soak
// bench asserts at 4096 sockets, pinned here at test scale.
func TestDrainReleasesCursorsAndGoroutines(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 8, Seed: 23})
	w := mapping.NewMemory(rma)
	site, err := StartSite(SiteConfig{
		AppName:  rma.Name,
		Wrappers: []mapping.ApplicationWrapper{w},
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}

	factory := container.Dial(site.ApplicationFactoryHandle())
	app, err := factory.CreateService()
	if err != nil {
		t.Fatal(err)
	}
	handles, err := app.Call(OpGetAllExecs)
	if err != nil || len(handles) == 0 {
		t.Fatalf("getAllExecs: %v (%d handles)", err, len(handles))
	}
	exec, err := container.DialString(handles[0])
	if err != nil {
		t.Fatal(err)
	}
	svcs := site.ExecutionServices(rma.Execs[0].ID)
	if len(svcs) == 0 {
		t.Fatal("no live ExecutionService")
	}
	svc := svcs[0]

	// Open a paged result set over the wire and abandon the cursor — the
	// exact leak the drain must reclaim.
	q := perfdata.Query{Metric: "bandwidth", Time: rma.Execs[0].Time, Type: perfdata.UndefinedType}
	if _, next, err := exec.CallPaged(OpGetPR, "", 1, q.WireParams()...); err != nil || next == "" {
		t.Fatalf("paged open: cursor %q, err %v; want a live cursor", next, err)
	}
	if entries, _, _ := svc.CursorStats(); entries != 1 {
		t.Fatalf("live cursors = %d, want 1", entries)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := site.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if entries, bytes, _ := svc.CursorStats(); entries != 0 || bytes != 0 {
		t.Errorf("cursor table after drain: entries=%d bytes=%d, want empty", entries, bytes)
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines after drain = %d, baseline %d", runtime.NumGoroutine(), baseline)
}
