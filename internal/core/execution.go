package core

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pperfgrid/internal/gsh"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// rowOracle routes the getPR read path through the retained
// row-at-a-time, string-building implementation when set: fetchResults
// streams row by row instead of batch-decoding, and the raw wire
// streamers decline so the transport falls back to Invoke +
// perfdata.EncodeResults + the generic response encode. It is the
// differential oracle and ablation hook of the cold-path overhaul,
// mirroring soap.SetLegacyCodec one layer up. Not intended for
// concurrent toggling.
var rowOracle atomic.Bool

// SetRowOracle switches the package between the vectorized cold path
// (false, the default) and the retained row/string path (true). The two
// produce byte-identical wire envelopes — differential tests pin it —
// so only the cost differs.
func SetRowOracle(enabled bool) { rowOracle.Store(enabled) }

// RowOracle reports whether the oracle hook is on.
func RowOracle() bool { return rowOracle.Load() }

// encScratchPool recycles the per-request scratch slice the streaming
// encoders render each result into (one reused buffer per envelope, not
// one string per result).
var encScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// ExecutionService is the implementation behind one Execution grid service
// instance (Table 2). It is stateful, as OGSI instances are: discovery
// results are memoized and Performance Result queries go through the
// instance's cache (section 5.3.2.3) when one is configured.
type ExecutionService struct {
	id      string
	wrapper mapping.ExecutionWrapper

	// cache is the instance's Performance Results cache; a nil pointer
	// disables caching. It is an atomic pointer — not a mutex-guarded
	// field — because every getPR hit reads it, and the hot read path
	// must not serialize on instance state (NotifyUpdate swaps it).
	cache atomic.Pointer[Cache]

	hub  *ogsi.NotificationHub // nil disables notifications
	dial ogsi.SinkDialer       // nil disables getPRAsync callbacks

	async sync.WaitGroup // in-flight getPRAsync deliveries

	// wireEncodes counts SOAP response envelopes encoded on the getPR
	// raw path; tests use it to prove cache hits do zero marshalling.
	wireEncodes atomic.Int64

	// epoch is the execution's write generation. Every cache key is
	// prefixed with it (versionedKey), so a PublishResults bump retires
	// all previously cached envelopes and all in-flight singleflight
	// fills at once: their keys become structurally unreachable. This is
	// the version-stamp-at-query-start contract — a reader that started
	// before a write can only populate (and read) pre-write keys.
	epoch atomic.Int64

	// publishes counts successful PublishResults calls; invalidated
	// accumulates the cache entries purged by them. Both feed service
	// data, and tests pin exact per-instance invalidation counts.
	publishes   atomic.Int64
	invalidated atomic.Int64

	// flights singleflights identical in-flight getPR queries on the
	// cache-miss path: N concurrent cold misses cost one Mapping-Layer
	// execution, the other N-1 wait for the leader's result. coalesced
	// counts those followers.
	flightMu  sync.Mutex
	flights   map[string]*prFlight
	coalesced atomic.Int64

	// lastResultLen remembers the previous getPR result count, the
	// pre-sizing hint for the next fetch's result arena — cold SMG98
	// queries return thousands of rows, and growing a slice there from
	// nothing costs a dozen reallocations per query.
	lastResultLen atomic.Int64

	mu        sync.Mutex
	foci      []string
	metrics   []string
	types     []string
	timeRange *perfdata.TimeRange
	info      []perfdata.KV

	cursorMu    sync.Mutex
	cursors     map[string]*prCursor
	cursorSeq   int64
	cursorIDs   []string // FIFO of live cursor ids, for bounded eviction
	cursorBytes int64    // footprint of all live cursors (cursorMu)

	// Cursor budgets (zero values take the Default* constants below).
	// Slow readers paging huge result sets are connection-level
	// backpressure risks: without a byte budget and TTL, a few thousand
	// stalled clients pin a server's memory indefinitely. Eviction is
	// opportunistic — on cursor open and continuation — so no background
	// goroutine exists to leak.
	curMaxEntries   int
	curMaxBytes     int64
	curTTL          time.Duration
	cursorNow       func() time.Time // injectable clock for TTL tests
	cursorEvictions atomic.Int64
}

// prCursor is the server-side state of one paged getPR result set: the
// decoded results and the read offset. Pages encode on their way out —
// straight into the transport buffer on the raw-streamed path — so no
// per-result intermediate strings sit in cursor state.
type prCursor struct {
	rs      []perfdata.Result
	offset  int
	bytes   int64     // footprint charged against the cursor byte budget
	expires time.Time // idle deadline, refreshed on each continuation
}

// prFlight is one in-flight getPR Mapping-Layer execution; followers with
// the same query key wait on done and share the outcome.
type prFlight struct {
	done chan struct{}
	rs   []perfdata.Result
	err  error
}

// DefaultPageSize is the page length used when a paged getPR names none.
const DefaultPageSize = 256

// maxLiveCursors bounds per-instance paged-query state; opening more
// evicts the oldest (its continuation then fails, like an expired cursor).
const maxLiveCursors = 64

// DefaultCursorBytes is the default byte budget for an instance's live
// cursor table; DefaultCursorTTL is how long an untouched cursor
// survives before opportunistic eviction reclaims it.
const (
	DefaultCursorBytes = 32 << 20
	DefaultCursorTTL   = 60 * time.Second
)

// UpdatesTopic is the notification topic on which an Execution service
// announces data-store updates (the paper's future-work streaming case).
const UpdatesTopic = "executionUpdates"

// AsyncPRTopic is the notification topic on which asynchronous getPR
// results are delivered to the requester's callback sink.
const AsyncPRTopic = "prResults"

// OpGetPRAsync is the callback-model variant of getPR (the paper's
// future-work "registry-callback model" replacing one blocked thread per
// service call): the call returns immediately and the results are
// delivered to the caller-supplied NotificationSink.
const OpGetPRAsync = "getPRAsync"

// NewExecutionService builds an Execution service over a mapping-layer
// wrapper. cache may be nil to disable Performance Result caching; hub may
// be nil to disable update notifications.
func NewExecutionService(id string, w mapping.ExecutionWrapper, cache Cache, hub *ogsi.NotificationHub) *ExecutionService {
	e := &ExecutionService{id: id, wrapper: w, hub: hub}
	if cache != nil {
		e.cache.Store(&cache)
	}
	return e
}

// SetSinkDialer enables the getPRAsync callback model by providing the
// dialer used to reach requester sinks (container.SOAPSinkDialer in
// production; fakes in tests).
func (e *ExecutionService) SetSinkDialer(d ogsi.SinkDialer) { e.dial = d }

// ID returns the execution's unique ID.
func (e *ExecutionService) ID() string { return e.id }

// cacheRef returns the current cache snapshot (nil when caching is off).
// NotifyUpdate replaces the cache wholesale, so each request takes one
// snapshot and works against it throughout; a request racing an update
// may write into the retired cache, which nothing reads afterwards.
func (e *ExecutionService) cacheRef() Cache {
	if p := e.cache.Load(); p != nil {
		return *p
	}
	return nil
}

// CacheStats reports the instance's cache statistics; the zero value is
// returned when caching is off.
func (e *ExecutionService) CacheStats() CacheStats {
	if c := e.cacheRef(); c != nil {
		return c.Stats()
	}
	return CacheStats{}
}

// Invoke implements the Execution PortType wire protocol.
func (e *ExecutionService) Invoke(op string, params []string) ([]string, error) {
	return e.InvokeContext(context.Background(), op, params)
}

// InvokeContext implements ogsi.ContextService: the transport's
// per-request context (client disconnection plus the HeaderDeadline
// budget) flows through the getPR read path — singleflight waits, cache
// fills, and the Mapping-Layer fetch guard — so an expired or abandoned
// request stops costing work instead of running to a result nobody
// reads.
func (e *ExecutionService) InvokeContext(ctx context.Context, op string, params []string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch op {
	case OpGetInfo:
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		return perfdata.EncodeKVs(info), nil
	case OpGetFoci:
		return e.Foci()
	case OpGetMetrics:
		return e.Metrics()
	case OpGetTypes:
		return e.Types()
	case OpGetTimeStartEnd:
		tr, err := e.TimeStartEnd()
		if err != nil {
			return nil, err
		}
		return []string{
			strconv.FormatFloat(tr.Start, 'g', -1, 64),
			strconv.FormatFloat(tr.End, 'g', -1, 64),
		}, nil
	case OpGetPR:
		q, err := perfdata.ParseQueryParams(params)
		if err != nil {
			return nil, err
		}
		rs, err := e.performanceResults(ctx, q)
		if err != nil {
			return nil, err
		}
		return perfdata.EncodeResults(rs), nil
	case OpPublishPR:
		rs, err := perfdata.ParseResults(params)
		if err != nil {
			return nil, err
		}
		if err := e.PublishResults(rs); err != nil {
			return nil, err
		}
		return []string{strconv.Itoa(len(rs))}, nil
	case OpGetPRAsync:
		return e.getPRAsync(params)
	case ogsi.OpSubscribe:
		if e.hub == nil {
			return nil, fmt.Errorf("core: execution %s has no notification hub", e.id)
		}
		return e.hub.HandleSubscribe(params)
	}
	return nil, fmt.Errorf("%w: %q on Execution", ogsi.ErrUnknownOperation, op)
}

// InvokePaged implements ogsi.PagedService for getPR: large result sets
// flow to the client in chunks instead of one giant envelope, the cursor
// travelling in a SOAP header entry (section "paged getPR" of
// ARCHITECTURE.md). Every other operation falls back to the plain
// protocol as a single terminal page, so the concatenation of pages is
// always element-identical to the unpaged reply. This is the string
// protocol; raw-capable transports page through InvokePagedRawTo, which
// encodes each page straight into the wire buffer.
func (e *ExecutionService) InvokePaged(op string, params []string, cursor string, limit int) ([]string, string, error) {
	return e.InvokePagedContext(context.Background(), op, params, cursor, limit)
}

// InvokePagedContext implements ogsi.ContextPagedService; see
// InvokeContext for the propagation contract.
func (e *ExecutionService) InvokePagedContext(ctx context.Context, op string, params []string, cursor string, limit int) ([]string, string, error) {
	if op != OpGetPR {
		out, err := e.InvokeContext(ctx, op, params)
		return out, "", err
	}
	page, next, err := e.pagedResults(ctx, op, params, cursor, limit)
	if err != nil {
		return nil, "", err
	}
	return perfdata.EncodeResults(page), next, nil
}

// pagedResults is the shared paging engine behind both paged protocols:
// it returns one page of decoded results plus the continuation cursor.
func (e *ExecutionService) pagedResults(ctx context.Context, op string, params []string, cursor string, limit int) ([]perfdata.Result, string, error) {
	if limit <= 0 {
		limit = DefaultPageSize
	}
	if cursor != "" {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		return e.continueCursor(cursor, limit)
	}
	q, err := perfdata.ParseQueryParams(params)
	if err != nil {
		return nil, "", err
	}
	rs, err := e.performanceResults(ctx, q)
	if err != nil {
		return nil, "", err
	}
	if len(rs) <= limit {
		return rs, "", nil
	}
	return e.openCursor(rs, limit)
}

// SetCursorBudget overrides the live-cursor table's budgets: maximum
// live cursors, total byte footprint, and idle TTL (zero keeps the
// current value for each). Configure before serving traffic.
func (e *ExecutionService) SetCursorBudget(entries int, maxBytes int64, ttl time.Duration) {
	e.cursorMu.Lock()
	defer e.cursorMu.Unlock()
	if entries > 0 {
		e.curMaxEntries = entries
	}
	if maxBytes > 0 {
		e.curMaxBytes = maxBytes
	}
	if ttl > 0 {
		e.curTTL = ttl
	}
}

// SetCursorClock injects the clock used for cursor TTL decisions (tests).
func (e *ExecutionService) SetCursorClock(now func() time.Time) {
	e.cursorMu.Lock()
	defer e.cursorMu.Unlock()
	e.cursorNow = now
}

// CursorStats reports the live cursor table's current entry count, byte
// footprint, and cumulative evictions (budget and TTL combined).
func (e *ExecutionService) CursorStats() (entries int, bytes int64, evictions int64) {
	e.cursorMu.Lock()
	entries, bytes = len(e.cursorIDs), e.cursorBytes
	e.cursorMu.Unlock()
	return entries, bytes, e.cursorEvictions.Load()
}

func (e *ExecutionService) cursorBudgetsLocked() (entries int, maxBytes int64, ttl time.Duration) {
	entries, maxBytes, ttl = e.curMaxEntries, e.curMaxBytes, e.curTTL
	if entries <= 0 {
		entries = maxLiveCursors
	}
	if maxBytes <= 0 {
		maxBytes = DefaultCursorBytes
	}
	if ttl <= 0 {
		ttl = DefaultCursorTTL
	}
	return entries, maxBytes, ttl
}

func (e *ExecutionService) cursorClockLocked() time.Time {
	if e.cursorNow != nil {
		return e.cursorNow()
	}
	return time.Now()
}

// evictCursorsLocked applies the cursor budgets: idle-expired cursors go
// first, then the oldest-opened cursors until the table fits both the
// entry count (leaving room for extra new entries) and the byte budget
// (with extraBytes of headroom). Runs opportunistically under cursorMu
// on every open and continuation — backpressure without a reaper
// goroutine.
func (e *ExecutionService) evictCursorsLocked(extraEntries int, extraBytes int64) {
	maxEntries, maxBytes, _ := e.cursorBudgetsLocked()
	now := e.cursorClockLocked()
	for i := 0; i < len(e.cursorIDs); {
		id := e.cursorIDs[i]
		if c := e.cursors[id]; c != nil && now.After(c.expires) {
			e.dropCursorLocked(id)
			e.cursorEvictions.Add(1)
			continue // dropCursorLocked shifted the slice; same index again
		}
		i++
	}
	for len(e.cursorIDs) > 0 &&
		(len(e.cursorIDs)+extraEntries > maxEntries || e.cursorBytes+extraBytes > maxBytes) {
		e.dropCursorLocked(e.cursorIDs[0])
		e.cursorEvictions.Add(1)
	}
}

// openCursor registers the remainder of a paged result set and returns
// its first page. The cursor shares the result slice (it may alias a
// cache entry, which is immutable by the Cache contract) and only ever
// reads it.
func (e *ExecutionService) openCursor(rs []perfdata.Result, limit int) ([]perfdata.Result, string, error) {
	e.cursorMu.Lock()
	defer e.cursorMu.Unlock()
	if e.cursors == nil {
		e.cursors = make(map[string]*prCursor)
	}
	footprint := resultsFootprint(rs)
	e.evictCursorsLocked(1, footprint)
	_, _, ttl := e.cursorBudgetsLocked()
	e.cursorSeq++
	id := fmt.Sprintf("pr-%s-%d", e.id, e.cursorSeq)
	e.cursors[id] = &prCursor{
		rs:      rs,
		offset:  limit,
		bytes:   footprint,
		expires: e.cursorClockLocked().Add(ttl),
	}
	e.cursorIDs = append(e.cursorIDs, id)
	e.cursorBytes += footprint
	return rs[:limit], id, nil
}

// continueCursor serves the next page of a live cursor, retiring it when
// the set is exhausted. A continuation refreshes the cursor's idle TTL:
// a reader that keeps paging — however slowly relative to its own pace —
// stays live; one that stops is reclaimed.
func (e *ExecutionService) continueCursor(id string, limit int) ([]perfdata.Result, string, error) {
	e.cursorMu.Lock()
	defer e.cursorMu.Unlock()
	e.evictCursorsLocked(0, 0)
	c, ok := e.cursors[id]
	if !ok {
		return nil, "", fmt.Errorf("core: unknown or expired getPR cursor %q", id)
	}
	end := c.offset + limit
	if end >= len(c.rs) {
		page := c.rs[c.offset:]
		e.dropCursorLocked(id)
		return page, "", nil
	}
	page := c.rs[c.offset:end]
	c.offset = end
	_, _, ttl := e.cursorBudgetsLocked()
	c.expires = e.cursorClockLocked().Add(ttl)
	return page, id, nil
}

// InvokePagedRawTo implements ogsi.RawPagedStreamer for getPR: one page
// of results encodes straight into the transport's pooled buffer — the
// cursor header entry included — with no per-result intermediate
// strings. The envelope bytes are identical to what the transport
// produces from the equivalent InvokePaged page (differential tests pin
// it). Declines under the row-oracle and legacy-codec hooks so ablations
// measure the string path end to end.
func (e *ExecutionService) InvokePagedRawTo(op string, params []string, cursor string, limit int, buf *bytes.Buffer) (string, bool, error) {
	return e.InvokePagedRawToContext(context.Background(), op, params, cursor, limit, buf)
}

// InvokePagedRawToContext implements ogsi.ContextRawPagedStreamer; see
// InvokeContext for the propagation contract.
func (e *ExecutionService) InvokePagedRawToContext(ctx context.Context, op string, params []string, cursor string, limit int, buf *bytes.Buffer) (string, bool, error) {
	if op != OpGetPR || rowOracle.Load() || soap.LegacyCodec() {
		return "", false, nil
	}
	page, next, err := e.pagedResults(ctx, op, params, cursor, limit)
	if err != nil {
		return "", true, err
	}
	var headers []soap.HeaderEntry
	if next != "" {
		headers = []soap.HeaderEntry{{Name: ogsi.HeaderCursor, Value: next}}
	}
	if err := encodeResultsTo(buf, headers, page); err != nil {
		return "", true, err
	}
	e.wireEncodes.Add(1)
	return next, true, nil
}

// encodeResultsTo streams one getPR response envelope into buf: each
// result renders into a pooled scratch slice (perfdata.AppendEncode) and
// escapes straight into the envelope — the zero-intermediate encode.
func encodeResultsTo(buf *bytes.Buffer, headers []soap.HeaderEntry, rs []perfdata.Result) error {
	var enc soap.ResponseEncoder
	if err := enc.Begin(buf, OpGetPR, headers); err != nil {
		return err
	}
	scratchp := encScratchPool.Get().(*[]byte)
	scratch := *scratchp
	for i := range rs {
		scratch = rs[i].AppendEncode(scratch[:0])
		enc.ReturnBytes(scratch)
	}
	*scratchp = scratch
	encScratchPool.Put(scratchp)
	return enc.Close()
}

func (e *ExecutionService) dropCursorLocked(id string) {
	if c, ok := e.cursors[id]; ok {
		e.cursorBytes -= c.bytes
	}
	delete(e.cursors, id)
	for i, cid := range e.cursorIDs {
		if cid == id {
			e.cursorIDs = append(e.cursorIDs[:i], e.cursorIDs[i+1:]...)
			break
		}
	}
}

// InvokeRaw implements ogsi.RawResponder for getPR when caching is on:
// the entry's encoded SOAP response envelope is written to the wire
// verbatim, so a repeat query (the Table 5 workload) does zero XML
// marshalling. On a miss the envelope is encoded exactly once and
// attached to the cache entry alongside the decoded results.
func (e *ExecutionService) InvokeRaw(op string, params []string) ([]byte, bool, error) {
	return e.InvokeRawContext(context.Background(), op, params)
}

// InvokeRawContext implements ogsi.ContextRawResponder; see
// InvokeContext for the propagation contract.
func (e *ExecutionService) InvokeRawContext(ctx context.Context, op string, params []string) ([]byte, bool, error) {
	cache := e.cacheRef()
	if op != OpGetPR || cache == nil {
		return nil, false, nil
	}
	q, err := perfdata.ParseQueryParams(params)
	if err != nil {
		return nil, true, err
	}
	// One logical lookup, counted once: a present envelope counts as the
	// hit inside GetWire; an absent envelope is not a miss — the Get on
	// the fallback path below settles the outcome (hit when only the
	// decoded results are cached, miss when nothing is).
	key := e.versionedKey(q.Key())
	if raw, ok := cache.GetWire(key); ok {
		return raw, true, nil
	}
	rs, err := e.resultsByKey(ctx, cache, key, q)
	if err != nil {
		return nil, true, err
	}
	raw, err := e.encodeResults(rs)
	if err != nil {
		return nil, true, err
	}
	e.wireEncodes.Add(1)
	// Attach to the same snapshot the results came from: if NotifyUpdate
	// swapped caches mid-request, this writes into the retired cache and
	// the stale envelope is never served.
	cache.AttachWire(key, raw)
	return raw, true, nil
}

// WireEncodes reports how many getPR response envelopes this instance has
// encoded — the number cache hits hold at zero growth.
func (e *ExecutionService) WireEncodes() int64 { return e.wireEncodes.Load() }

// encodeResults renders one owned getPR response envelope (the form the
// encoded-response cache retains). The vectorized path streams each
// result's bytes straight into a pooled buffer; under the row-oracle or
// legacy-codec hooks it takes the retained string route instead. Both
// emit identical bytes.
func (e *ExecutionService) encodeResults(rs []perfdata.Result) ([]byte, error) {
	if rowOracle.Load() || soap.LegacyCodec() {
		return soap.EncodeResponse(OpGetPR, nil, perfdata.EncodeResults(rs))
	}
	buf := soap.GetBuffer()
	defer soap.PutBuffer(buf)
	if err := encodeResultsTo(buf, nil, rs); err != nil {
		return nil, err
	}
	return soap.CopyEncoded(buf), nil
}

// InvokeRawTo implements ogsi.RawStreamer for getPR on uncached
// instances — the cold wire path. The result set decodes batch-at-a-time
// into a pooled arena (mapping.ResultAppender), encodes straight into
// the transport's buffer, and the arena recycles: steady-state cold
// queries materialize no per-row values, no per-result strings, and no
// owned envelope slice. Cached instances decline (InvokeRaw serves them,
// since their envelope must be retained for the cache), as do the
// row-oracle and legacy-codec hooks and wrappers without a vectorized
// path.
func (e *ExecutionService) InvokeRawTo(op string, params []string, buf *bytes.Buffer) (bool, error) {
	return e.InvokeRawToContext(context.Background(), op, params, buf)
}

// InvokeRawToContext implements ogsi.ContextRawStreamer; see
// InvokeContext for the propagation contract. The context is checked at
// the store boundary — an expired request never reaches the Mapping
// Layer.
func (e *ExecutionService) InvokeRawToContext(ctx context.Context, op string, params []string, buf *bytes.Buffer) (bool, error) {
	if op != OpGetPR || rowOracle.Load() || soap.LegacyCodec() {
		return false, nil
	}
	if e.cacheRef() != nil {
		return false, nil
	}
	a, ok := e.wrapper.(mapping.ResultAppender)
	if !ok {
		return false, nil
	}
	q, err := perfdata.ParseQueryParams(params)
	if err != nil {
		return true, err
	}
	if err := ctx.Err(); err != nil {
		return true, err
	}
	arena := mapping.GetResultArena(e.resultsHint())
	rs, err := a.AppendPerformanceResults(q, *arena)
	*arena = rs
	if err != nil {
		mapping.PutResultArena(arena)
		return true, err
	}
	e.noteResultLen(len(rs))
	err = encodeResultsTo(buf, nil, rs)
	mapping.PutResultArena(arena)
	if err != nil {
		return true, err
	}
	e.wireEncodes.Add(1)
	return true, nil
}

// resultsHint pre-sizes a result arena from the previous query's result
// count, clamped to keep a pathological outlier from pinning memory.
func (e *ExecutionService) resultsHint() int {
	const maxHint = 1 << 16
	n := int(e.lastResultLen.Load())
	if n <= 0 {
		return 16
	}
	if n > maxHint {
		return maxHint
	}
	return n
}

func (e *ExecutionService) noteResultLen(n int) { e.lastResultLen.Store(int64(n)) }

// getPRAsync implements the callback query model. Parameters are
// [requestID, sinkHandle, metric, start, end, type, foci...]. The call is
// acknowledged immediately; the query runs in the background and one
// DeliverNotification lands on the sink with the encoded outcome.
func (e *ExecutionService) getPRAsync(params []string) ([]string, error) {
	if e.dial == nil {
		return nil, fmt.Errorf("core: execution %s has no callback dialer", e.id)
	}
	if len(params) < 6 {
		return nil, fmt.Errorf("core: %s requires [requestID, sinkHandle, metric, start, end, type, foci...]", OpGetPRAsync)
	}
	requestID, sinkStr := params[0], params[1]
	if requestID == "" || strings.ContainsRune(requestID, '\n') {
		return nil, fmt.Errorf("core: bad request ID %q", requestID)
	}
	sinkHandle, err := gsh.Parse(sinkStr)
	if err != nil {
		return nil, fmt.Errorf("core: bad sink handle: %w", err)
	}
	q, err := perfdata.ParseQueryParams(params[2:])
	if err != nil {
		return nil, err
	}
	sink := e.dial(sinkHandle)
	e.async.Add(1)
	go func() {
		defer e.async.Done()
		rs, err := e.PerformanceResults(q)
		// Delivery failures have no requester to report to; the sink side
		// times out and retries, matching the at-most-once semantics of
		// the paper's notification model.
		_ = sink.Deliver(AsyncPRTopic, EncodeAsyncOutcome(requestID, rs, err))
	}()
	return []string{"accepted"}, nil
}

// FlushAsync blocks until in-flight asynchronous deliveries complete, for
// deterministic tests and orderly shutdown.
func (e *ExecutionService) FlushAsync() { e.async.Wait() }

// EncodeAsyncOutcome renders an asynchronous getPR outcome as the one-
// string notification message: the request ID, a status line ("ok" or
// "error: ..."), then one encoded result per line.
func EncodeAsyncOutcome(requestID string, rs []perfdata.Result, err error) string {
	var b strings.Builder
	b.WriteString(requestID)
	b.WriteByte('\n')
	if err != nil {
		b.WriteString("error: " + strings.ReplaceAll(err.Error(), "\n", " "))
		return b.String()
	}
	b.WriteString("ok")
	for _, s := range perfdata.EncodeResults(rs) {
		b.WriteByte('\n')
		b.WriteString(s)
	}
	return b.String()
}

// DecodeAsyncOutcome parses an asynchronous outcome message.
func DecodeAsyncOutcome(msg string) (requestID string, rs []perfdata.Result, err error) {
	lines := strings.Split(msg, "\n")
	if len(lines) < 2 {
		return "", nil, fmt.Errorf("core: malformed async outcome %q", msg)
	}
	requestID = lines[0]
	status := lines[1]
	if status != "ok" {
		if rest, found := strings.CutPrefix(status, "error: "); found {
			return requestID, nil, fmt.Errorf("core: remote getPR failed: %s", rest)
		}
		return "", nil, fmt.Errorf("core: malformed async status %q", status)
	}
	rs, perr := perfdata.ParseResults(lines[2:])
	if perr != nil {
		return requestID, nil, perr
	}
	return requestID, rs, nil
}

// Info returns the execution's metadata, memoized after the first call.
func (e *ExecutionService) Info() ([]perfdata.KV, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.info == nil {
		info, err := e.wrapper.Info()
		if err != nil {
			return nil, err
		}
		e.info = info
	}
	return e.info, nil
}

// Foci returns the unique focus values, memoized.
func (e *ExecutionService) Foci() ([]string, error) {
	return e.discover(&e.foci, e.wrapper.Foci)
}

// Metrics returns the unique metric names, memoized.
func (e *ExecutionService) Metrics() ([]string, error) {
	return e.discover(&e.metrics, e.wrapper.Metrics)
}

// Types returns the unique collector types, memoized.
func (e *ExecutionService) Types() ([]string, error) {
	return e.discover(&e.types, e.wrapper.Types)
}

func (e *ExecutionService) discover(slot *[]string, fetch func() ([]string, error)) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if *slot == nil {
		vals, err := fetch()
		if err != nil {
			return nil, err
		}
		if vals == nil {
			vals = []string{}
		}
		*slot = vals
	}
	return *slot, nil
}

// TimeStartEnd returns the execution's time range, memoized.
func (e *ExecutionService) TimeStartEnd() (perfdata.TimeRange, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.timeRange == nil {
		tr, err := e.wrapper.TimeStartEnd()
		if err != nil {
			return perfdata.TimeRange{}, err
		}
		e.timeRange = &tr
	}
	return *e.timeRange, nil
}

// PerformanceResults answers a getPR query, consulting the cache first and
// only reaching the Mapping Layer (and data store) on a miss — exactly the
// flow of section 5.3.2.3.
func (e *ExecutionService) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	return e.performanceResults(context.Background(), q)
}

// performanceResults is PerformanceResults under a request context.
func (e *ExecutionService) performanceResults(ctx context.Context, q perfdata.Query) ([]perfdata.Result, error) {
	return e.resultsThrough(ctx, e.cacheRef(), q)
}

// resultsThrough answers a getPR query against one cache snapshot (which
// may be nil for uncached instances).
func (e *ExecutionService) resultsThrough(ctx context.Context, cache Cache, q perfdata.Query) ([]perfdata.Result, error) {
	if cache == nil {
		return e.fetchResults(ctx, q)
	}
	return e.resultsByKey(ctx, cache, e.versionedKey(q.Key()), q)
}

// versionedKey prefixes a query key with the execution's current write
// epoch. Keys are stamped once, at query start: a singleflight leader
// that began before a PublishResults fills the cache under its pre-write
// key, which no post-write reader can look up — the stale entry is
// discarded by unreachability rather than by an explicit stamp
// comparison. Post-write readers likewise never join a pre-write flight,
// because the flights map is keyed by the versioned key too.
func (e *ExecutionService) versionedKey(key string) string {
	return strconv.FormatInt(e.epoch.Load(), 10) + "|" + key
}

// resultsByKey answers a getPR query whose cache key is already computed
// (the raw wire path derives it for GetWire; recomputing the sorted-foci
// join per lookup would tax the hot path twice).
//
// Hits take the fast path: one counting cache lookup, no instance locks —
// concurrent hits proceed in parallel on the sharded cache. Cold misses
// are singleflighted: concurrent identical queries share one
// Mapping-Layer execution instead of racing N of them before the cache
// fills. Each logical lookup is counted exactly once: the fast-path Get
// settles hit or miss; the double-checked re-lookup under the flight lock
// (which closes the window where a flight completed between the fast-path
// miss and the lock) is stats-free, and coalesced followers add no
// further counts. Uncached instances skip coalescing — with caching off,
// every query must generate real store load (the Table 5 / Figure 12
// baseline workloads depend on it).
// Context contract: a follower whose context expires abandons its wait
// without disturbing the flight (the leader still completes, fills the
// cache, and retires the flight — no orphans); a leader whose context
// has already expired retires its flight immediately with the context
// error, before the Mapping Layer is reached. A leader that expires
// mid-fetch still completes the fill — the result is complete by
// construction, so the cache never holds a half-filled entry.
func (e *ExecutionService) resultsByKey(ctx context.Context, cache Cache, key string, q perfdata.Query) ([]perfdata.Result, error) {
	if rs, ok := cache.Get(key); ok {
		return rs, nil
	}
	e.flightMu.Lock()
	if f, ok := e.flights[key]; ok {
		e.flightMu.Unlock()
		e.coalesced.Add(1)
		select {
		case <-f.done:
			return f.rs, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// A leader fills the cache before retiring its flight, so a request
	// that finds neither a flight nor (on this stats-free re-check) an
	// entry really is cold.
	if rs, ok := cacheGetQuiet(cache, key); ok {
		e.flightMu.Unlock()
		return rs, nil
	}
	f := &prFlight{done: make(chan struct{})}
	if e.flights == nil {
		e.flights = make(map[string]*prFlight)
	}
	e.flights[key] = f
	e.flightMu.Unlock()

	start := time.Now()
	rs, err := e.fetchResults(ctx, q)
	if err == nil {
		// Fill the cache before retiring the flight, so a request arriving
		// after the flight is gone finds the entry.
		cache.Put(key, rs, time.Since(start))
	}
	f.rs, f.err = rs, err
	e.flightMu.Lock()
	delete(e.flights, key)
	e.flightMu.Unlock()
	close(f.done)
	return rs, err
}

// CoalescedQueries reports how many getPR queries were answered by
// waiting on an identical in-flight query instead of executing the
// Mapping Layer themselves.
func (e *ExecutionService) CoalescedQueries() int64 { return e.coalesced.Load() }

// fetchResults reaches the Mapping Layer for a getPR query. Wrappers
// with a vectorized path (mapping.ResultAppender — the relational
// wrappers decode minidb's column-oriented batches, the flat-file
// wrapper filters during its byte-level re-parse) append straight into a
// pre-sized slice the cache can retain; streaming wrappers
// (mapping.ResultStreamer) decode row by row into the same slice. The
// row-oracle hook forces the streaming path, the differential baseline
// of the cold-path overhaul. The returned slice is freshly allocated —
// never an arena — because the cache (and callers) retain it.
//
// The context gate here is the "never reaches the Mapping Layer"
// boundary: an already-expired request is turned away before any store
// work begins.
func (e *ExecutionService) fetchResults(ctx context.Context, q perfdata.Query) ([]perfdata.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !rowOracle.Load() {
		if a, ok := e.wrapper.(mapping.ResultAppender); ok {
			rs, err := a.AppendPerformanceResults(q, make([]perfdata.Result, 0, e.resultsHint()))
			if err == nil {
				e.noteResultLen(len(rs))
			}
			// The caller (and the cache, whose byte budget charges len, not
			// cap) retains this slice: when the hint badly over-shot — a
			// small query after a large one — hand back a right-sized copy
			// instead of pinning the oversized backing array.
			if excess := cap(rs) - len(rs); excess > 32 && cap(rs) > len(rs)+len(rs)/4 {
				rs = append(make([]perfdata.Result, 0, len(rs)), rs...)
			}
			return rs, err
		}
	}
	if s, ok := e.wrapper.(mapping.ResultStreamer); ok {
		return mapping.CollectResults(s, q)
	}
	return e.wrapper.PerformanceResults(q)
}

// NotifyUpdate announces a data-store update: memoized discovery state is
// dropped, the Performance Result cache is replaced (stale entries must
// not survive new data), live paging cursors are expired, and subscribers
// are notified.
func (e *ExecutionService) NotifyUpdate(message string) {
	e.mu.Lock()
	e.foci, e.metrics, e.types, e.info, e.timeRange = nil, nil, nil, nil, nil
	e.mu.Unlock()
	if old := e.cacheRef(); old != nil {
		fresh := NewCacheFromConfig(old.Config())
		e.cache.Store(&fresh)
	}
	e.cursorMu.Lock()
	e.cursors, e.cursorIDs, e.cursorBytes = nil, nil, 0
	e.cursorMu.Unlock()
	if e.hub != nil {
		e.hub.Notify(UpdatesTopic, message)
	}
}

// OnDestroy implements ogsi.Destroyer: live cursor state is released and
// in-flight asynchronous deliveries are flushed, so a drained container
// leaves no paged-query memory or background goroutines behind.
func (e *ExecutionService) OnDestroy() {
	e.cursorMu.Lock()
	e.cursors, e.cursorIDs, e.cursorBytes = nil, nil, 0
	e.cursorMu.Unlock()
	e.FlushAsync()
}

// PublishResults ingests Performance Results into the execution's data
// store — the live write path (publishPR on the wire). The wrapper must
// implement mapping.ResultWriter; read-only stores report
// mapping.ErrNotWritable. On success the write is immediately visible: a
// getPR issued after PublishResults returns can never be served a
// pre-write cached envelope (see noteWrite for the sequence).
func (e *ExecutionService) PublishResults(rs []perfdata.Result) error {
	w, ok := e.wrapper.(mapping.ResultWriter)
	if !ok {
		return fmt.Errorf("core: execution %s: %w", e.id, mapping.ErrNotWritable)
	}
	if len(rs) == 0 {
		return nil
	}
	if err := w.PublishResults(rs); err != nil {
		return err
	}
	e.noteWrite(fmt.Sprintf("published %d results", len(rs)))
	return nil
}

// noteWrite applies the write-visibility sequence after a successful
// store mutation, in order:
//
//  1. Bump the epoch — every previously cached key, and every key an
//     in-flight singleflight leader will fill, becomes unreachable.
//  2. Purge the cache — the retired entries' bytes release immediately
//     instead of aging out of the budget (counted into invalidated).
//  3. Drop memoized discovery state — a publish can introduce new
//     metrics, foci, or types.
//  4. Notify subscribers on UpdatesTopic.
//
// Unlike NotifyUpdate (an external whole-store reload), noteWrite keeps
// the cache instance (only its entries die) and leaves live paging
// cursors alone: a cursor pages a point-in-time snapshot slice, which
// the Cache sharing contract already guarantees is never mutated.
func (e *ExecutionService) noteWrite(message string) {
	e.publishes.Add(1)
	e.epoch.Add(1)
	if c := e.cacheRef(); c != nil {
		e.invalidated.Add(int64(c.Invalidate()))
	}
	e.mu.Lock()
	e.foci, e.metrics, e.types, e.info, e.timeRange = nil, nil, nil, nil, nil
	e.mu.Unlock()
	if e.hub != nil {
		e.hub.Notify(UpdatesTopic, message)
	}
}

// Epoch reports the execution's write generation — the number of
// store-mutating PublishResults applied through this instance.
func (e *ExecutionService) Epoch() int64 { return e.epoch.Load() }

// Publishes reports how many PublishResults calls have mutated the store.
func (e *ExecutionService) Publishes() int64 { return e.publishes.Load() }

// Invalidations reports the cumulative number of cache entries purged by
// the write path.
func (e *ExecutionService) Invalidations() int64 { return e.invalidated.Load() }

// engineStatser is the optional wrapper interface exposing the backing
// storage engine's counters; the minidb-backed wrappers implement it.
type engineStatser interface {
	EngineStats() minidb.EngineStats
}

// ServiceData publishes the execution's discovery sets as service data
// elements, so clients can use FindServiceData path queries (the paper's
// future-work XPath mechanism) instead of discovery calls:
//
//	FindServiceData("/metrics")               — all metric names
//	FindServiceData("/foci[value=/Process/0]") — focus existence check
func (e *ExecutionService) ServiceData() map[string][]string {
	cache := e.cacheRef()
	_, writable := e.wrapper.(mapping.ResultWriter)
	out := map[string][]string{
		"executionID": {e.id},
		"caching":     {strconv.FormatBool(cache != nil)},
		"writable":    {strconv.FormatBool(writable)},
		"epoch":       {strconv.FormatInt(e.epoch.Load(), 10)},
		"publishes":   {strconv.FormatInt(e.publishes.Load(), 10)},
	}
	cEntries, cBytes, cEvictions := e.CursorStats()
	out["cursorEntries"] = []string{strconv.Itoa(cEntries)}
	out["cursorBytes"] = []string{strconv.FormatInt(cBytes, 10)}
	out["cursorEvictions"] = []string{strconv.FormatInt(cEvictions, 10)}
	if cache != nil {
		s := cache.Stats()
		out["cachePolicy"] = []string{cache.Policy()}
		out["cacheHits"] = []string{strconv.FormatInt(s.Hits, 10)}
		out["cacheMisses"] = []string{strconv.FormatInt(s.Misses, 10)}
		out["cacheEvictions"] = []string{strconv.FormatInt(s.Evictions, 10)}
		out["cacheEntries"] = []string{strconv.Itoa(cache.Len())}
		out["cacheBytes"] = []string{strconv.FormatInt(cache.SizeBytes(), 10)}
		out["coalescedQueries"] = []string{strconv.FormatInt(e.coalesced.Load(), 10)}
		out["cacheInvalidated"] = []string{strconv.FormatInt(e.invalidated.Load(), 10)}
		if sl, ok := cache.(shardLoader); ok {
			loads := sl.ShardLoads()
			shards := make([]string, len(loads))
			for i, l := range loads {
				shards[i] = fmt.Sprintf("shard=%d|hits=%d|misses=%d|evictions=%d|entries=%d|bytes=%d",
					i, l.Hits, l.Misses, l.Evictions, l.Entries, l.Bytes)
			}
			out["cacheShards"] = []string{strconv.Itoa(len(loads))}
			out["cacheShardLoads"] = shards
		}
	}
	if es, ok := e.wrapper.(engineStatser); ok {
		st := es.EngineStats()
		out["engine"] = []string{st.Engine}
		if st.Engine == "disk" {
			out["pageCacheBytes"] = []string{strconv.FormatInt(st.PageCacheBytes, 10)}
			out["pageCacheHits"] = []string{strconv.FormatInt(st.PageCacheHits, 10)}
			out["pageCacheMisses"] = []string{strconv.FormatInt(st.PageCacheMisses, 10)}
			out["blocksSkipped"] = []string{strconv.FormatInt(st.BlocksSkipped, 10)}
			out["blocksScanned"] = []string{strconv.FormatInt(st.BlocksScanned, 10)}
			out["compactions"] = []string{strconv.FormatInt(st.Seals+st.Merges+st.Checkpoints, 10)}
			out["walFsyncs"] = []string{strconv.FormatInt(st.WALFsyncs, 10)}
			out["segments"] = []string{strconv.Itoa(st.Segments)}
			out["sealedRows"] = []string{strconv.Itoa(st.SealedRows)}
		}
	}
	if ms, err := e.Metrics(); err == nil {
		out["metrics"] = ms
	}
	if fs, err := e.Foci(); err == nil {
		out["foci"] = fs
	}
	if ts, err := e.Types(); err == nil {
		out["types"] = ts
	}
	if tr, err := e.TimeStartEnd(); err == nil {
		out["timeRange"] = []string{tr.Encode()}
	}
	return out
}
