package core

// Tests for the wire-path features of the Execution service: paged getPR
// (ogsi.PagedService) and the encoded-response cache (ogsi.RawResponder).

import (
	"reflect"
	"strings"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// smgExecution builds an Execution service over a result set large enough
// to need several pages.
func smgExecution(t *testing.T, cache Cache) (*ExecutionService, perfdata.Query) {
	t.Helper()
	d := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 4, TimeBins: 16, Seed: 5})
	w := mapping.NewMemory(d)
	ew, err := w.ExecutionWrapper("1")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewExecutionService("1", ew, cache, nil)
	tr, err := svc.TimeStartEnd()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := svc.Metrics()
	if err != nil || len(metrics) == 0 {
		t.Fatalf("metrics: %v, %v", metrics, err)
	}
	return svc, perfdata.Query{Metric: metrics[0], Time: tr, Type: perfdata.UndefinedType}
}

// drainPages pages a getPR query to exhaustion and returns the
// concatenation plus the number of pages fetched.
func drainPages(t *testing.T, svc *ExecutionService, q perfdata.Query, limit int) ([]string, int) {
	t.Helper()
	var all []string
	cursor := ""
	pages := 0
	for {
		page, next, err := svc.InvokePaged(OpGetPR, q.WireParams(), cursor, limit)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if limit > 0 && len(page) > limit {
			t.Fatalf("page of %d values exceeds limit %d", len(page), limit)
		}
		all = append(all, page...)
		if next == "" {
			return all, pages
		}
		cursor = next
	}
}

// TestPagedGetPRDifferential: the concatenation of pages must be
// byte-identical to the unpaged reply, for several page sizes.
func TestPagedGetPRDifferential(t *testing.T) {
	svc, q := smgExecution(t, nil)
	unpaged, err := svc.Invoke(OpGetPR, q.WireParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(unpaged) < 20 {
		t.Fatalf("result set too small (%d) to exercise paging", len(unpaged))
	}
	for _, limit := range []int{1, 7, len(unpaged) - 1, len(unpaged), len(unpaged) + 1, 0} {
		paged, pages := drainPages(t, svc, q, limit)
		if strings.Join(paged, "\x00") != strings.Join(unpaged, "\x00") {
			t.Fatalf("limit %d: paged result differs from unpaged", limit)
		}
		if limit > 0 && limit < len(unpaged) {
			want := (len(unpaged) + limit - 1) / limit
			if pages != want {
				t.Errorf("limit %d: %d pages, want %d", limit, pages, want)
			}
		}
	}
}

// TestPagedGetPRCursorLifecycle: cursors are single-use state — exhausted
// and unknown cursors fail, and a data update expires live cursors.
func TestPagedGetPRCursorLifecycle(t *testing.T) {
	svc, q := smgExecution(t, nil)
	_, next, err := svc.InvokePaged(OpGetPR, q.WireParams(), "", 5)
	if err != nil || next == "" {
		t.Fatalf("open cursor: %q, %v", next, err)
	}
	if _, _, err := svc.InvokePaged(OpGetPR, nil, "no-such-cursor", 5); err == nil {
		t.Error("unknown cursor accepted")
	}
	svc.NotifyUpdate("store changed")
	if _, _, err := svc.InvokePaged(OpGetPR, nil, next, 5); err == nil {
		t.Error("cursor survived a data update")
	}
}

// TestPagedGetPRCursorEviction: opening more paged sets than the bound
// expires the oldest instead of growing without limit.
func TestPagedGetPRCursorEviction(t *testing.T) {
	svc, q := smgExecution(t, nil)
	_, oldest, err := svc.InvokePaged(OpGetPR, q.WireParams(), "", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxLiveCursors; i++ {
		if _, _, err := svc.InvokePaged(OpGetPR, q.WireParams(), "", 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := svc.InvokePaged(OpGetPR, nil, oldest, 1); err == nil {
		t.Error("oldest cursor survived eviction beyond the bound")
	}
}

// TestPagedOtherOpsSinglePage: non-getPR operations page as one terminal
// page with the plain Invoke result.
func TestPagedOtherOpsSinglePage(t *testing.T) {
	svc, _ := smgExecution(t, nil)
	want, err := svc.Invoke(OpGetFoci, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, next, err := svc.InvokePaged(OpGetFoci, nil, "", 2)
	if err != nil || next != "" {
		t.Fatalf("paged getFoci: next=%q err=%v", next, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("paged getFoci = %v, want %v", got, want)
	}
}

// TestInvokeRawServesEncodedCache is the encoded-response cache
// acceptance test: the first getPR encodes the SOAP envelope exactly
// once, and every repeat is served from the cache with zero XML
// marshalling — proven by the encode counter staying flat and by the
// repeat returning the very same byte slice.
func TestInvokeRawServesEncodedCache(t *testing.T) {
	svc, q := smgExecution(t, NewLRU(0))
	first, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams())
	if err != nil || !ok {
		t.Fatalf("first InvokeRaw: ok=%v err=%v", ok, err)
	}
	if svc.WireEncodes() != 1 {
		t.Fatalf("first call encoded %d envelopes, want 1", svc.WireEncodes())
	}
	second, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams())
	if err != nil || !ok {
		t.Fatalf("second InvokeRaw: ok=%v err=%v", ok, err)
	}
	if svc.WireEncodes() != 1 {
		t.Errorf("repeat query re-encoded: %d envelopes", svc.WireEncodes())
	}
	if &first[0] != &second[0] {
		t.Error("repeat did not return the cached byte slice")
	}
	// The cached envelope must decode to exactly the unpaged Invoke reply.
	resp, err := soap.DecodeResponse(second)
	if err != nil || resp.Operation != OpGetPR {
		t.Fatalf("cached envelope: %v, %v", resp, err)
	}
	want, err := svc.Invoke(OpGetPR, q.WireParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Returns, want) {
		t.Error("cached envelope decodes to different results")
	}
	if hits := svc.CacheStats().Hits; hits < 1 {
		t.Errorf("wire hits not counted: %+v", svc.CacheStats())
	}
}

// TestInvokeRawDeclinesWithoutCache: with caching off the raw path must
// decline so the container falls back to plain Invoke.
func TestInvokeRawDeclinesWithoutCache(t *testing.T) {
	svc, q := smgExecution(t, nil)
	if _, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams()); ok || err != nil {
		t.Fatalf("raw path should decline without a cache: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := svc.InvokeRaw(OpGetFoci, nil); ok {
		t.Error("raw path should decline non-getPR operations")
	}
}

// TestInvokeRawAfterDecodedWarm: a query first answered through the plain
// path (decoded results cached, no wire bytes) gets its envelope attached
// on the first raw call and served from cache on the second.
func TestInvokeRawAfterDecodedWarm(t *testing.T) {
	svc, q := smgExecution(t, NewLRU(0))
	if _, err := svc.PerformanceResults(q); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams()); !ok || err != nil {
		t.Fatalf("raw after warm: ok=%v err=%v", ok, err)
	}
	if svc.WireEncodes() != 1 {
		t.Fatalf("encodes = %d, want 1", svc.WireEncodes())
	}
	if _, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams()); !ok || err != nil {
		t.Fatalf("raw repeat: ok=%v err=%v", ok, err)
	}
	if svc.WireEncodes() != 1 {
		t.Errorf("repeat re-encoded: %d", svc.WireEncodes())
	}
}

// TestNotifyUpdateDropsWire: a data update must not leave stale encoded
// envelopes behind.
func TestNotifyUpdateDropsWire(t *testing.T) {
	svc, q := smgExecution(t, NewLRU(0))
	if _, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams()); !ok || err != nil {
		t.Fatal(err)
	}
	svc.NotifyUpdate("store changed")
	if _, ok, err := svc.InvokeRaw(OpGetPR, q.WireParams()); !ok || err != nil {
		t.Fatal(err)
	}
	if svc.WireEncodes() != 2 {
		t.Errorf("encodes after invalidation = %d, want 2", svc.WireEncodes())
	}
}
