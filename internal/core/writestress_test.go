package core

// Write-path isolation and concurrency suite: exact per-instance cache
// invalidation counts (a write to execution X purges only X's entries),
// the singleflight version-stamp contract (an in-flight pre-write fetch
// can never repopulate the cache for post-write readers), and a
// writers-plus-readers stress run over live services, meant for -race.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

// starPair builds one two-execution star store and returns cached
// services over executions "1" and "2" — the per-instance-cache topology
// of a real site (Site.executionConstructor).
func starPair(t *testing.T) (*ExecutionService, *ExecutionService, *datagen.Dataset) {
	t.Helper()
	smg := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 4, Seed: 11})
	w, err := mapping.NewStar(smg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string) *ExecutionService {
		ew, err := w.ExecutionWrapper(id)
		if err != nil {
			t.Fatal(err)
		}
		return NewExecutionService(id, ew, NewCacheFromConfig(CacheConfig{Policy: "cost"}), nil)
	}
	return mk("1"), mk("2"), smg
}

// windowQuery is a func_calls query over [start, end) — distinct windows
// produce distinct cache keys.
func windowQuery(start, end float64) perfdata.Query {
	return perfdata.Query{Metric: "func_calls", Time: perfdata.TimeRange{Start: start, End: end}, Type: perfdata.UndefinedType}
}

func fillCache(t *testing.T, svc *ExecutionService, qs []perfdata.Query) {
	t.Helper()
	for _, q := range qs {
		if _, err := svc.PerformanceResults(q); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWritePathInvalidationCounts pins the exact invalidation accounting:
// a publish to X purges all of X's entries (and only X's), counts them
// into X's cumulative Invalidations, and leaves Y's cache untouched.
func TestWritePathInvalidationCounts(t *testing.T) {
	svcX, svcY, smg := starPair(t)
	end := smg.Execs[0].Time.End
	var xq, yq []perfdata.Query
	for i := 0; i < 6; i++ {
		xq = append(xq, windowQuery(float64(i), end))
	}
	for i := 0; i < 4; i++ {
		yq = append(yq, windowQuery(float64(10+i), end))
	}

	fillCache(t, svcX, xq)
	fillCache(t, svcY, yq)
	// Attach wire envelopes to some of X's entries: invalidation counts
	// entries, not bytes, so these must not change the arithmetic.
	for _, q := range xq[:3] {
		if _, handled, err := svcX.InvokeRaw(OpGetPR, q.WireParams()); !handled || err != nil {
			t.Fatalf("InvokeRaw: handled=%v err=%v", handled, err)
		}
	}
	if n := svcX.cacheRef().Len(); n != len(xq) {
		t.Fatalf("X cache has %d entries before write, want %d", n, len(xq))
	}

	write := []perfdata.Result{{
		Metric: "func_calls", Focus: "/Process/50/Code/MPI/MPI_Send", Type: "vampir",
		Time: perfdata.TimeRange{Start: 1, End: 2}, Value: 7,
	}}
	if err := svcX.PublishResults(write); err != nil {
		t.Fatal(err)
	}
	if got := svcX.Invalidations(); got != int64(len(xq)) {
		t.Fatalf("X invalidations = %d, want %d", got, len(xq))
	}
	if n := svcX.cacheRef().Len(); n != 0 {
		t.Fatalf("X cache has %d entries after write, want 0", n)
	}
	if got := svcY.Invalidations(); got != 0 {
		t.Fatalf("write to X invalidated %d of Y's entries", got)
	}
	if n := svcY.cacheRef().Len(); n != len(yq) {
		t.Fatalf("Y cache has %d entries after X's write, want %d", n, len(yq))
	}

	// Refill and write again: the counter is cumulative.
	fillCache(t, svcX, xq)
	if err := svcX.PublishResults(write); err != nil {
		t.Fatal(err)
	}
	if got := svcX.Invalidations(); got != int64(2*len(xq)) {
		t.Fatalf("cumulative X invalidations = %d, want %d", got, 2*len(xq))
	}

	// The counters surface as service data.
	sd := svcX.ServiceData()
	for key, want := range map[string]string{
		"writable":         "true",
		"epoch":            "2",
		"publishes":        "2",
		"cacheInvalidated": fmt.Sprint(2 * len(xq)),
	} {
		if got := sd[key]; len(got) != 1 || got[0] != want {
			t.Errorf("service data %s = %v, want [%s]", key, got, want)
		}
	}
}

// TestPublishNotWritable pins the read-only error path: a wrapper
// without ResultWriter rejects publishes with mapping.ErrNotWritable,
// over both the API and the wire operation.
func TestPublishNotWritable(t *testing.T) {
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 4, Seed: 9})
	w, err := mapping.NewXML(rma)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := w.ExecutionWrapper(rma.Execs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewExecutionService(rma.Execs[0].ID, ew, nil, nil)
	rs := []perfdata.Result{{Metric: "m", Focus: "/", Type: "t", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: 1}}
	if err := svc.PublishResults(rs); !errors.Is(err, mapping.ErrNotWritable) {
		t.Fatalf("PublishResults on XML store: %v, want ErrNotWritable", err)
	}
	if _, err := svc.Invoke(OpPublishPR, perfdata.EncodeResults(rs)); !errors.Is(err, mapping.ErrNotWritable) {
		t.Fatalf("publishPR on XML store: %v, want ErrNotWritable", err)
	}
	if sd := svc.ServiceData(); len(sd["writable"]) != 1 || sd["writable"][0] != "false" {
		t.Errorf("service data writable = %v, want [false]", sd["writable"])
	}
}

// gatedWrapper wraps a writable execution wrapper and, on
// PerformanceResults, reads the store FIRST and then blocks until the
// gate opens — the adversarial interleaving where a singleflight leader
// holds pre-write data while a write lands, and completes (filling the
// cache) only afterwards. It deliberately implements neither
// ResultAppender nor ResultStreamer, so fetchResults takes this path.
type gatedWrapper struct {
	mapping.ExecutionWrapper
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedWrapper) PerformanceResults(q perfdata.Query) ([]perfdata.Result, error) {
	rs, err := g.ExecutionWrapper.PerformanceResults(q)
	g.entered <- struct{}{}
	<-g.gate
	return rs, err
}

func (g *gatedWrapper) PublishResults(rs []perfdata.Result) error {
	return g.ExecutionWrapper.(mapping.ResultWriter).PublishResults(rs)
}

// TestWritePathSingleflightVersionStamp pins the version-stamp contract
// on the in-flight-miss window: a fetch that started before a write
// completes with pre-write data and fills the cache under its pre-write
// (epoch-stamped) key, which post-write readers can never look up — and
// a post-write reader never joins the pre-write flight, so it fetches
// fresh post-write data even while the old flight is still in the air.
func TestWritePathSingleflightVersionStamp(t *testing.T) {
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 1, MessageSizes: 4, Seed: 10})
	m := mapping.NewMemory(rma)
	inner, err := m.ExecutionWrapper(rma.Execs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedWrapper{ExecutionWrapper: inner, entered: make(chan struct{}, 4), gate: make(chan struct{})}
	svc := NewExecutionService(rma.Execs[0].ID, g, NewCacheFromConfig(CacheConfig{Policy: "cost"}), nil)

	q := perfdata.Query{Metric: "bandwidth", Time: rma.Execs[0].Time, Type: perfdata.UndefinedType}
	write := []perfdata.Result{{
		Metric: "bandwidth", Focus: "/Comm/put/msgsize/1048576", Type: "presta",
		Time: perfdata.TimeRange{Start: 10, End: 20}, Value: 239.5,
	}}

	type outcome struct {
		rs  []perfdata.Result
		err error
	}
	leader := make(chan outcome, 1)
	go func() {
		rs, err := svc.PerformanceResults(q)
		leader <- outcome{rs, err}
	}()
	<-g.entered // the leader has read pre-write data and is now stalled

	if err := svc.PublishResults(write); err != nil {
		t.Fatal(err)
	}

	// A post-write reader with the identical query must not join the
	// stalled pre-write flight (the flights map is keyed by versioned
	// key): it starts its own fetch and stalls on the gate itself.
	follower := make(chan outcome, 1)
	go func() {
		rs, err := svc.PerformanceResults(q)
		follower <- outcome{rs, err}
	}()
	<-g.entered

	select {
	case <-leader:
		t.Fatal("leader completed before the gate opened")
	case <-follower:
		t.Fatal("post-write reader completed before the gate opened")
	default:
	}
	close(g.gate)

	lead := <-leader
	foll := <-follower
	if lead.err != nil || foll.err != nil {
		t.Fatalf("leader err=%v follower err=%v", lead.err, foll.err)
	}
	// The leader's query started pre-write: its snapshot excludes the
	// write. The post-write reader must include it.
	if len(lead.rs) != len(foll.rs)-len(write) {
		t.Fatalf("leader saw %d results, post-write reader %d (want +%d)", len(lead.rs), len(foll.rs), len(write))
	}

	// The leader's stale fill landed under a dead (pre-epoch) key: a
	// fresh read — cache hit or not — serves post-write data.
	rs, err := svc.PerformanceResults(q)
	if err != nil {
		t.Fatal(err)
	}
	if encodeJoined(rs) != encodeJoined(foll.rs) {
		t.Fatal("read after write served the stale singleflight fill")
	}
}

// sortedEncoded canonicalizes a result set as a sorted multiset of wire
// strings — concurrent writers interleave nondeterministically, so the
// final store's row order (and therefore result order) is not fixed,
// only its contents.
func sortedEncoded(rs []perfdata.Result) string {
	enc := perfdata.EncodeResults(rs)
	sort.Strings(enc)
	return strings.Join(enc, "\n")
}

// TestWritePathConcurrentStress runs N writers and M readers against
// live cached services with cache churn — meant for -race. Invariants:
// reads of the written execution never error and never lose base rows;
// reads of the untouched sibling execution stay byte-stable throughout;
// and the final store contents equal base data plus every write, as a
// multiset, with zero invalidations charged to the sibling.
func TestWritePathConcurrentStress(t *testing.T) {
	svcX, svcY, smg := starPair(t)
	whole := smg.Execs[0].Time
	xq := windowQuery(0, whole.End)
	yq := windowQuery(0, smg.Execs[1].Time.End)

	baseX, err := svcX.PerformanceResults(xq)
	if err != nil {
		t.Fatal(err)
	}
	baseN := len(baseX)
	wantY, err := svcY.PerformanceResults(yq)
	if err != nil {
		t.Fatal(err)
	}
	wantYEnc := encodeJoined(wantY)

	const (
		writers         = 3
		writesPerWriter = 10
		readers         = 6
		readsPerReader  = 120
	)
	genWrite := func(w, i int) perfdata.Result {
		return perfdata.Result{
			Metric: "func_calls",
			Focus:  fmt.Sprintf("/Process/%d/Code/MPI/MPI_Stress", 100+w),
			Type:   "vampir",
			Time:   perfdata.TimeRange{Start: float64(i), End: float64(i + 1)},
			Value:  float64(w*1000 + i),
		}
	}

	errCh := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerWriter; i++ {
				if err := svcX.PublishResults([]perfdata.Result{genWrite(w, i)}); err != nil {
					errCh <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) * 7919))
			for i := 0; i < readsPerReader; i++ {
				switch i % 3 {
				case 0: // written execution: append-only, so no read shrinks
					rs, err := svcX.PerformanceResults(xq)
					if err != nil {
						errCh <- fmt.Errorf("reader %d X op %d: %w", r, i, err)
						return
					}
					if len(rs) < baseN || len(rs) > baseN+writers*writesPerWriter {
						errCh <- fmt.Errorf("reader %d op %d: X returned %d results (base %d)", r, i, len(rs), baseN)
						return
					}
				case 1: // untouched sibling: byte-stable under X's writes
					rs, err := svcY.PerformanceResults(yq)
					if err != nil {
						errCh <- fmt.Errorf("reader %d Y op %d: %w", r, i, err)
						return
					}
					if encodeJoined(rs) != wantYEnc {
						errCh <- fmt.Errorf("reader %d op %d: Y's results changed under X's writes", r, i)
						return
					}
				default: // churn: unique windows through the raw envelope path
					q := windowQuery(rng.Float64()*10, whole.End-rng.Float64()*10)
					if _, handled, err := svcX.InvokeRaw(OpGetPR, q.WireParams()); !handled || err != nil {
						errCh <- fmt.Errorf("reader %d raw op %d: handled=%v err=%v", r, i, handled, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got := svcX.Publishes(); got != writers*writesPerWriter {
		t.Fatalf("publishes = %d, want %d", got, writers*writesPerWriter)
	}
	if got := svcY.Invalidations(); got != 0 {
		t.Fatalf("sibling execution charged %d invalidations", got)
	}

	// Final state: base data plus every write, as a multiset, on both the
	// live service and a store rebuilt from scratch.
	var all []perfdata.Result
	for w := 0; w < writers; w++ {
		for i := 0; i < writesPerWriter; i++ {
			all = append(all, genWrite(w, i))
		}
	}
	want := append(append([]perfdata.Result(nil), baseX...), all...)
	final, err := svcX.PerformanceResults(xq)
	if err != nil {
		t.Fatal(err)
	}
	if sortedEncoded(final) != sortedEncoded(want) {
		t.Fatalf("final contents diverge: %d results, want %d", len(final), len(want))
	}
}
