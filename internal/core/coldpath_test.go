package core

// Differential tests for the cold getPR overhaul: the vectorized,
// zero-intermediate wire path (mapping.ResultAppender + the soap
// streaming encoder, served through ogsi.RawStreamer /
// ogsi.RawPagedStreamer) must produce byte-identical envelopes and
// identical result sets to the retained row-at-a-time / string-building
// oracle (SetRowOracle), on the full and paged protocols, for every
// store shape.

import (
	"bytes"
	"testing"

	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

// coldShapes builds one uncached wrapper + representative query per
// store shape (the paper's three data sources plus the memory oracle).
func coldShapes(t *testing.T) map[string]struct {
	build func() (mapping.ExecutionWrapper, error)
	q     perfdata.Query
	id    string
} {
	t.Helper()
	hpl := datagen.HPL(datagen.HPLConfig{Executions: 6, Seed: 41})
	rma := datagen.PrestaRMA(datagen.RMAConfig{Executions: 2, MessageSizes: 12, Seed: 42})
	smg := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 8, Seed: 43})
	return map[string]struct {
		build func() (mapping.ExecutionWrapper, error)
		q     perfdata.Query
		id    string
	}{
		"HPL-wide": {
			build: func() (mapping.ExecutionWrapper, error) {
				w, err := mapping.NewWideTable(hpl)
				if err != nil {
					return nil, err
				}
				return w.ExecutionWrapper(hpl.Execs[0].ID)
			},
			q:  perfdata.Query{Metric: "gflops", Time: hpl.Execs[0].Time, Type: perfdata.UndefinedType},
			id: hpl.Execs[0].ID,
		},
		"RMA-flat": {
			build: func() (mapping.ExecutionWrapper, error) {
				w, err := mapping.NewFlatFile(rma)
				if err != nil {
					return nil, err
				}
				return w.ExecutionWrapper(rma.Execs[0].ID)
			},
			q:  perfdata.Query{Metric: "bandwidth", Time: rma.Execs[0].Time, Type: perfdata.UndefinedType},
			id: rma.Execs[0].ID,
		},
		"SMG98-star": {
			build: func() (mapping.ExecutionWrapper, error) {
				w, err := mapping.NewStar(smg)
				if err != nil {
					return nil, err
				}
				return w.ExecutionWrapper(smg.Execs[0].ID)
			},
			q:  perfdata.Query{Metric: "func_calls", Time: smg.Execs[0].Time, Type: perfdata.UndefinedType},
			id: smg.Execs[0].ID,
		},
	}
}

// oracleEnvelope renders the envelope exactly as the transport does on
// the retained string path: Invoke -> EncodeResults -> EncodeResponse.
func oracleEnvelope(t *testing.T, svc *ExecutionService, q perfdata.Query) []byte {
	t.Helper()
	SetRowOracle(true)
	defer SetRowOracle(false)
	var buf bytes.Buffer
	if took, err := svc.InvokeRawTo(OpGetPR, q.WireParams(), &buf); took || err != nil {
		t.Fatalf("raw streamer must decline under the row oracle (took=%v err=%v)", took, err)
	}
	returns, err := svc.Invoke(OpGetPR, q.WireParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := soap.EncodeResponse(OpGetPR, nil, returns)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestColdWireEnvelopeByteIdentical(t *testing.T) {
	for name, shape := range coldShapes(t) {
		shape := shape
		t.Run(name, func(t *testing.T) {
			ew, err := shape.build()
			if err != nil {
				t.Fatal(err)
			}
			svc := NewExecutionService(shape.id, ew, nil, nil)
			want := oracleEnvelope(t, svc, shape.q)

			buf := soap.GetBuffer()
			defer soap.PutBuffer(buf)
			took, err := svc.InvokeRawTo(OpGetPR, shape.q.WireParams(), buf)
			if err != nil {
				t.Fatal(err)
			}
			if !took {
				t.Fatal("uncached appender-backed service must take the raw stream path")
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("cold envelope diverges from the row/string oracle:\nvectorized %d bytes\noracle     %d bytes", buf.Len(), len(want))
			}
			// The envelope carries real results, not a degenerate empty set.
			resp, err := soap.DecodeResponse(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Returns) == 0 {
				t.Fatal("representative query returned no results; byte identity is vacuous")
			}
		})
	}
}

// TestColdPagedEnvelopeByteIdentical pages the same query through two
// fresh services (so cursor tokens align) — one on the vectorized raw
// paged path, one on the string protocol rendered exactly as the
// transport would — and requires byte-identical envelopes page by page.
func TestColdPagedEnvelopeByteIdentical(t *testing.T) {
	for name, shape := range coldShapes(t) {
		shape := shape
		t.Run(name, func(t *testing.T) {
			ewA, err := shape.build()
			if err != nil {
				t.Fatal(err)
			}
			ewB, err := shape.build()
			if err != nil {
				t.Fatal(err)
			}
			fast := NewExecutionService(shape.id, ewA, nil, nil)
			oracle := NewExecutionService(shape.id, ewB, nil, nil)

			const limit = 7
			cursorF, cursorO := "", ""
			pages := 0
			for {
				buf := soap.GetBuffer()
				next, took, err := fast.InvokePagedRawTo(OpGetPR, shape.q.WireParams(), cursorF, limit, buf)
				if err != nil {
					t.Fatal(err)
				}
				if !took {
					t.Fatal("uncached appender-backed service must take the raw paged path")
				}

				SetRowOracle(true)
				returns, nextO, oerr := oracle.InvokePaged(OpGetPR, shape.q.WireParams(), cursorO, limit)
				SetRowOracle(false)
				if oerr != nil {
					t.Fatal(oerr)
				}
				var headers []soap.HeaderEntry
				if nextO != "" {
					headers = []soap.HeaderEntry{{Name: ogsi.HeaderCursor, Value: nextO}}
				}
				want, err := soap.EncodeResponse(OpGetPR, headers, returns)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("page %d envelope diverges (%d vs %d bytes)", pages, buf.Len(), len(want))
				}
				soap.PutBuffer(buf)
				pages++
				if (next == "") != (nextO == "") {
					t.Fatalf("cursor divergence at page %d: %q vs %q", pages, next, nextO)
				}
				if next == "" {
					break
				}
				cursorF, cursorO = next, nextO
			}
			// HPL is a whole-run store: one result, one terminal page. The
			// multi-page cursor machinery must be exercised by the series
			// shapes.
			if name != "HPL-wide" && pages < 2 {
				t.Fatalf("query paged in %d page(s); the paged comparison is vacuous", pages)
			}
		})
	}
}

// TestColdResultSetMatchesOracle pins decoded result-set equality end to
// end: the wire envelope from the vectorized path decodes (with the
// zero-copy parser, as the client does) to exactly the oracle's decoded
// results.
func TestColdResultSetMatchesOracle(t *testing.T) {
	for name, shape := range coldShapes(t) {
		shape := shape
		t.Run(name, func(t *testing.T) {
			ew, err := shape.build()
			if err != nil {
				t.Fatal(err)
			}
			svc := NewExecutionService(shape.id, ew, nil, nil)

			SetRowOracle(true)
			want, werr := svc.PerformanceResults(shape.q)
			SetRowOracle(false)
			if werr != nil {
				t.Fatal(werr)
			}

			buf := soap.GetBuffer()
			defer soap.PutBuffer(buf)
			if _, err := svc.InvokeRawTo(OpGetPR, shape.q.WireParams(), buf); err != nil {
				t.Fatal(err)
			}
			resp, err := soap.DecodeResponse(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			got, err := perfdata.ParseResults(resp.Returns)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("result count diverges: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("result %d diverges:\nvectorized %+v\noracle     %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestColdCachedRawMatchesOracleBytes pins the cached miss path's
// streamed encode to the string oracle's bytes, and the repeat hit to
// the attached envelope, verbatim.
func TestColdCachedRawMatchesOracleBytes(t *testing.T) {
	shape := coldShapes(t)["SMG98-star"]
	ew, err := shape.build()
	if err != nil {
		t.Fatal(err)
	}
	svc := NewExecutionService(shape.id, ew, NewLRU(16), nil)
	raw, took, err := svc.InvokeRaw(OpGetPR, shape.q.WireParams())
	if err != nil || !took {
		t.Fatalf("cached InvokeRaw: took=%v err=%v", took, err)
	}

	ew2, err := shape.build()
	if err != nil {
		t.Fatal(err)
	}
	want := oracleEnvelope(t, NewExecutionService(shape.id, ew2, nil, nil), shape.q)
	if !bytes.Equal(raw, want) {
		t.Fatalf("cached-miss streamed envelope diverges from oracle (%d vs %d bytes)", len(raw), len(want))
	}
	again, took, err := svc.InvokeRaw(OpGetPR, shape.q.WireParams())
	if err != nil || !took {
		t.Fatalf("repeat InvokeRaw: took=%v err=%v", took, err)
	}
	if !bytes.Equal(again, raw) {
		t.Fatal("repeat hit did not serve the attached envelope verbatim")
	}
	if n := svc.WireEncodes(); n != 1 {
		t.Fatalf("wireEncodes = %d after miss+hit, want 1", n)
	}
}

// TestColdPathAllocs pins the acceptance criterion at the service level:
// the vectorized cold path must allocate at least 5x less (and half the
// bytes) of the retained row/string oracle on an SMG98-shaped query.
func TestColdPathAllocs(t *testing.T) {
	shape := coldShapes(t)["SMG98-star"]
	ew, err := shape.build()
	if err != nil {
		t.Fatal(err)
	}
	svc := NewExecutionService(shape.id, ew, nil, nil)
	params := shape.q.WireParams()

	measure := func(oracle bool) (allocs float64) {
		SetRowOracle(oracle)
		defer SetRowOracle(false)
		buf := soap.GetBuffer()
		defer soap.PutBuffer(buf)
		run := func() {
			buf.Reset()
			if oracle {
				returns, err := svc.Invoke(OpGetPR, params)
				if err != nil {
					t.Fatal(err)
				}
				if err := soap.EncodeResponseTo(buf, OpGetPR, nil, returns); err != nil {
					t.Fatal(err)
				}
			} else {
				took, err := svc.InvokeRawTo(OpGetPR, params, buf)
				if err != nil || !took {
					t.Fatalf("took=%v err=%v", took, err)
				}
			}
		}
		run()
		return testing.AllocsPerRun(10, run)
	}

	fast := measure(false)
	oracle := measure(true)
	if oracle < 5*fast {
		t.Fatalf("cold-path allocation reduction below 5x: oracle %.0f allocs/op, vectorized %.0f", oracle, fast)
	}
	t.Logf("cold SMG98 getPR allocs/op: oracle %.0f, vectorized %.0f (%.1fx)", oracle, fast, oracle/fast)
}
