// Package core implements PPerfGrid's Semantic Layer — the paper's primary
// contribution. It provides the Application and Execution semantic objects
// as grid services (the PortTypes of Tables 1 and 2), the PPerfGrid
// Manager that caches Execution service instances and distributes them
// across replica hosts (section 5.3.1.4), and the Performance Results
// cache inside each Execution instance (section 5.3.2.3).
//
// The cache stores each query's decoded results and, once the query has
// been answered over the wire, the encoded SOAP response envelope
// alongside them — so a repeat query (the Table 5 workload) is served to
// the transport as pre-encoded bytes with zero XML marshalling. The
// production cache is sharded (cache_sharded.go): the key space is split
// across power-of-two shards, each with its own RWMutex, entry map, and
// eviction min-heap, so concurrent hits proceed in parallel and eviction
// is O(log n) instead of the retained single-lock implementation's O(n)
// scan. The Execution service also implements the paged getPR protocol:
// results flow to clients in cursor-addressed chunks (ogsi.PagedService)
// instead of one envelope per result set.
//
// The Site type at the bottom of the package assembles one complete
// PPerfGrid site: hosting containers, factories, Manager, and wrappers.
package core

import (
	"container/list"
	"sync"
	"time"

	"pperfgrid/internal/perfdata"
)

// CacheStats counts cache outcomes.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheConfig describes one Performance Results cache. The zero value is
// an unbounded sharded LRU cache.
type CacheConfig struct {
	// Policy selects replacement: "lru", "lfu", or "cost" (recomputation
	// cost × uses). Empty or unknown names mean LRU.
	Policy string
	// MaxEntries bounds the entry count; <= 0 means unbounded. This is
	// the original capacity mode, retained for back-compat.
	MaxEntries int
	// MaxBytes bounds the total footprint estimate of cached entries —
	// decoded results plus attached wire envelopes (see EntryFootprint).
	// <= 0 means unbounded. Entries that alone exceed the budget are not
	// cached. Ignored by the single-lock implementation.
	MaxBytes int64
	// Shards hints the shard count (rounded down to a power of two and
	// clamped so every shard owns at least one entry / one byte of
	// budget); <= 0 picks DefaultCacheShards. Ignored when SingleLock.
	Shards int
	// SingleLock builds the retained single-mutex implementation — the
	// differential oracle and ablation hook for the sharded cache.
	SingleLock bool
}

// Cache is the Performance Results cache: query-key to result-list, with
// a pluggable replacement policy. Implementations are safe for concurrent
// use. The stored cost is the mapping-layer time the entry saves on a hit,
// which the cost-aware policy uses to pick eviction victims.
//
// Alongside the decoded results, an entry can carry the encoded SOAP
// response envelope for the query (AttachWire/GetWire): a repeat query
// served over the wire then skips XML marshalling entirely — the
// transport writes the cached bytes verbatim. Wire bytes live and die
// with their entry, so eviction and invalidation need no extra
// bookkeeping.
//
// Sharing contract: Get returns the stored result slice itself, not a
// copy — callers (paged cursors, clients, experiments) may hold it
// indefinitely but must treat it as immutable. Implementations uphold the
// other direction: Put of new results for a key replaces the stored slice
// wholesale and eviction only drops references, so a slice already handed
// out is never mutated. The same applies to wire bytes: callers must not
// mutate a slice passed to AttachWire or returned by GetWire.
type Cache interface {
	Get(key string) ([]perfdata.Result, bool)
	Put(key string, results []perfdata.Result, cost time.Duration)
	// GetWire returns the entry's encoded response envelope. Present wire
	// counts as a hit; absence is not counted as a miss (the Get that
	// follows will count it).
	GetWire(key string) ([]byte, bool)
	// AttachWire stores encoded response bytes on an existing entry; it is
	// a no-op for unknown keys. Callers must not mutate wire afterwards.
	AttachWire(key string, wire []byte)
	Len() int
	// Invalidate drops every entry and reports how many were purged. The
	// write path (ExecutionService.PublishResults) calls it after a store
	// mutation so stale envelopes release their bytes immediately — the
	// epoch bump already makes their keys unreachable. Result slices and
	// wire bytes already handed out stay valid: references are dropped,
	// never mutated.
	Invalidate() int
	// SizeBytes reports the footprint estimate of all cached entries,
	// decoded results plus attached wire envelopes.
	SizeBytes() int64
	Stats() CacheStats
	// Policy names the replacement policy, for service data and reports.
	Policy() string
	// Config returns the cache's construction parameters, so an
	// invalidation (ExecutionService.NotifyUpdate) can rebuild an
	// identically configured empty cache.
	Config() CacheConfig
}

// quietCache is implemented by the in-package caches: a lookup that
// refreshes recency/frequency but records no hit or miss. The Execution
// service uses it for the double-checked re-lookup under its flight lock,
// so one logical getPR counts exactly once.
type quietCache interface {
	getQuiet(key string) ([]perfdata.Result, bool)
}

// cacheGetQuiet performs a stats-free lookup when the implementation
// supports it, falling back to a counting Get.
func cacheGetQuiet(c Cache, key string) ([]perfdata.Result, bool) {
	if qc, ok := c.(quietCache); ok {
		return qc.getQuiet(key)
	}
	return c.Get(key)
}

// Footprint estimation: capacity in bytes is accounted against an
// estimate of each entry's in-memory size, not a precise measurement —
// interned strings and allocator slack make the true number unknowable
// cheaply. The estimate is the struct sizes plus the string/wire bytes.
const (
	// resultStructBytes is one decoded perfdata.Result: three string
	// headers (16 B each), the TimeRange (16 B), and the value (8 B).
	resultStructBytes = 72
	// entryOverheadBytes covers the entry struct, its map slot, and its
	// eviction bookkeeping (list element or heap slot).
	entryOverheadBytes = 96
)

// resultsFootprint estimates the in-memory bytes of a decoded result set.
func resultsFootprint(rs []perfdata.Result) int64 {
	n := int64(len(rs)) * resultStructBytes
	for i := range rs {
		n += int64(len(rs[i].Metric) + len(rs[i].Focus) + len(rs[i].Type))
	}
	return n
}

// EntryFootprint estimates the bytes one cache entry occupies: fixed
// overhead, the key, the decoded results, and the attached wire envelope.
// Byte budgets (CacheConfig.MaxBytes) are accounted in these units.
func EntryFootprint(key string, rs []perfdata.Result, wire []byte) int64 {
	return entryOverheadBytes + int64(len(key)) + resultsFootprint(rs) + int64(len(wire))
}

// entry is one cached query result of the single-lock implementation.
type entry struct {
	key     string
	results []perfdata.Result
	wire    []byte // encoded SOAP response envelope, when attached
	cost    time.Duration
	uses    int64
	seq     int64         // insertion order: deterministic eviction tie-break
	size    int64         // EntryFootprint, maintained on every mutation
	elem    *list.Element // LRU position, when used
}

// baseCache carries the shared bookkeeping of the single-lock policies.
type baseCache struct {
	mu       sync.Mutex
	capacity int // <= 0 means unbounded
	entries  map[string]*entry
	stats    CacheStats
	bytes    int64
	seq      int64
}

func newBase(capacity int) baseCache {
	return baseCache{capacity: capacity, entries: make(map[string]*entry)}
}

func (c *baseCache) lenLocked() int { return len(c.entries) }

// GetWire implements the wire-bytes lookup shared by the non-LRU policies
// (lruCache shadows it to refresh recency). A wire hit bumps the entry's
// use count so frequency- and cost-driven eviction see wire traffic too.
func (c *baseCache) GetWire(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.wire == nil {
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	return e.wire, true
}

// AttachWire implements Cache.
func (c *baseCache) AttachWire(key string, wire []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		delta := int64(len(wire)) - int64(len(e.wire))
		e.wire = wire
		e.size += delta
		c.bytes += delta
	}
}

// getQuiet implements quietCache for the non-LRU policies.
func (c *baseCache) getQuiet(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e.uses++
	return e.results, true
}

// overwriteLocked refreshes an existing entry with new results, dropping
// any attached wire (new results invalidate the encoded envelope).
func (c *baseCache) overwriteLocked(e *entry, results []perfdata.Result, cost time.Duration) {
	e.results = results
	e.wire = nil
	e.cost = cost
	size := EntryFootprint(e.key, results, nil)
	c.bytes += size - e.size
	e.size = size
}

// insertLocked adds a fresh entry and accounts its footprint.
func (c *baseCache) insertLocked(key string, results []perfdata.Result, cost time.Duration) *entry {
	c.seq++
	e := &entry{key: key, results: results, cost: cost, seq: c.seq}
	e.size = EntryFootprint(key, results, nil)
	c.entries[key] = e
	c.bytes += e.size
	return e
}

// evictLocked removes the minimum entry under less, breaking ties by
// insertion order so eviction is deterministic (the property the
// sharded-vs-single-lock differential tests pin).
func (c *baseCache) evictLocked(less func(a, b *entry) bool) {
	var victim *entry
	for _, e := range c.entries {
		if victim == nil || less(e, victim) || (!less(victim, e) && e.seq < victim.seq) {
			victim = e
		}
	}
	if victim != nil {
		delete(c.entries, victim.key)
		c.bytes -= victim.size
		c.stats.Evictions++
	}
}

func (c *baseCache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Invalidate implements Cache for the non-LRU policies. Purged entries do
// not count as evictions: Stats().Evictions keeps meaning capacity
// pressure, not write-path invalidation.
func (c *baseCache) Invalidate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]*entry)
	c.bytes = 0
	return n
}

// lruCache evicts the least recently used entry.
type lruCache struct {
	baseCache
	order *list.List // front = most recent
}

// NewLRU creates a single-lock LRU cache — the retained pre-sharding
// implementation, kept as the differential oracle and ablation baseline.
// capacity <= 0 means unbounded — the behaviour of the paper's prototype,
// which never evicted.
func NewLRU(capacity int) Cache {
	return &lruCache{baseCache: newBase(capacity), order: list.New()}
}

func (c *lruCache) Policy() string { return "lru" }

func (c *lruCache) Config() CacheConfig {
	return CacheConfig{Policy: "lru", MaxEntries: c.capacity, SingleLock: true}
}

func (c *lruCache) Get(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	c.order.MoveToFront(e.elem)
	return e.results, true
}

// getQuiet shadows baseCache's to also refresh recency.
func (c *lruCache) getQuiet(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e.uses++
	c.order.MoveToFront(e.elem)
	return e.results, true
}

// GetWire shadows baseCache's to also refresh the entry's recency.
func (c *lruCache) GetWire(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.wire == nil {
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	c.order.MoveToFront(e.elem)
	return e.wire, true
}

func (c *lruCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.overwriteLocked(e, results, cost)
		c.order.MoveToFront(e.elem)
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		victim := c.order.Back()
		if victim != nil {
			v := victim.Value.(*entry)
			c.order.Remove(victim)
			delete(c.entries, v.key)
			c.bytes -= v.size
			c.stats.Evictions++
		}
	}
	e := c.insertLocked(key, results, cost)
	e.elem = c.order.PushFront(e)
}

func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

// Invalidate shadows baseCache's to also reset the recency list.
func (c *lruCache) Invalidate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]*entry)
	c.bytes = 0
	c.order.Init()
	return n
}

func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// lfuCache evicts the least frequently used entry (ties broken by
// insertion order).
type lfuCache struct {
	baseCache
}

// NewLFU creates a single-lock LFU cache (the retained pre-sharding
// implementation; eviction is an O(n) scan).
func NewLFU(capacity int) Cache {
	return &lfuCache{baseCache: newBase(capacity)}
}

func (c *lfuCache) Policy() string { return "lfu" }

func (c *lfuCache) Config() CacheConfig {
	return CacheConfig{Policy: "lfu", MaxEntries: c.capacity, SingleLock: true}
}

func (c *lfuCache) Get(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	return e.results, true
}

func (c *lfuCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.overwriteLocked(e, results, cost)
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		c.evictLocked(func(a, b *entry) bool { return a.uses < b.uses })
	}
	c.insertLocked(key, results, cost)
}

func (c *lfuCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

func (c *lfuCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// costAwareCache evicts the entry that is cheapest to recompute,
// weighting the mapping-layer cost by use count: victims minimize
// cost × (1 + uses). This is the paper's future-work "cache replacement
// policy [that] could adjust dynamically" — keeping the SMG98-style
// minute-long queries cached even when short HPL queries are hotter.
type costAwareCache struct {
	baseCache
}

// NewCostAware creates a single-lock recomputation-cost-aware cache (the
// retained pre-sharding implementation; eviction is an O(n) scan).
func NewCostAware(capacity int) Cache {
	return &costAwareCache{baseCache: newBase(capacity)}
}

func (c *costAwareCache) Policy() string { return "cost" }

func (c *costAwareCache) Config() CacheConfig {
	return CacheConfig{Policy: "cost", MaxEntries: c.capacity, SingleLock: true}
}

func (c *costAwareCache) Get(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	return e.results, true
}

func (c *costAwareCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.overwriteLocked(e, results, cost)
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		c.evictLocked(func(a, b *entry) bool {
			return a.cost*time.Duration(1+a.uses) < b.cost*time.Duration(1+b.uses)
		})
	}
	c.insertLocked(key, results, cost)
}

func (c *costAwareCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

func (c *costAwareCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// newSingleLock builds the retained single-lock cache by policy name.
func newSingleLock(policy string, capacity int) Cache {
	switch policy {
	case "lfu":
		return NewLFU(capacity)
	case "cost":
		return NewCostAware(capacity)
	default:
		return NewLRU(capacity)
	}
}

// NewCache builds the production (sharded) cache by policy name: "lru",
// "lfu", or "cost". Unknown names default to LRU. capacity is in entries;
// use NewCacheFromConfig for byte budgets, shard control, or the retained
// single-lock implementation.
func NewCache(policy string, capacity int) Cache {
	return NewCacheFromConfig(CacheConfig{Policy: policy, MaxEntries: capacity})
}

// NewCacheFromConfig builds a Performance Results cache from a full
// configuration. The default is the sharded implementation; SingleLock
// selects the retained single-mutex implementation (entry capacity only —
// it predates byte budgets, which it ignores).
func NewCacheFromConfig(cfg CacheConfig) Cache {
	if cfg.SingleLock {
		return newSingleLock(normalizePolicy(cfg.Policy), cfg.MaxEntries)
	}
	return newSharded(cfg)
}

// normalizePolicy maps unknown policy names to the LRU default.
func normalizePolicy(policy string) string {
	switch policy {
	case "lfu", "cost":
		return policy
	default:
		return "lru"
	}
}
