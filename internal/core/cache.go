// Package core implements PPerfGrid's Semantic Layer — the paper's primary
// contribution. It provides the Application and Execution semantic objects
// as grid services (the PortTypes of Tables 1 and 2), the PPerfGrid
// Manager that caches Execution service instances and distributes them
// across replica hosts (section 5.3.1.4), and the Performance Results
// cache inside each Execution instance (section 5.3.2.3).
//
// The cache stores each query's decoded results and, once the query has
// been answered over the wire, the encoded SOAP response envelope
// alongside them — so a repeat query (the Table 5 workload) is served to
// the transport as pre-encoded bytes with zero XML marshalling. The
// Execution service also implements the paged getPR protocol: results
// flow to clients in cursor-addressed chunks (ogsi.PagedService) instead
// of one envelope per result set.
//
// The Site type at the bottom of the package assembles one complete
// PPerfGrid site: hosting containers, factories, Manager, and wrappers.
package core

import (
	"container/list"
	"sync"
	"time"

	"pperfgrid/internal/perfdata"
)

// CacheStats counts cache outcomes.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is the Performance Results cache: query-key to result-list, with
// a pluggable replacement policy. Implementations are safe for concurrent
// use. The stored cost is the mapping-layer time the entry saves on a hit,
// which the cost-aware policy uses to pick eviction victims.
//
// Alongside the decoded results, an entry can carry the encoded SOAP
// response envelope for the query (AttachWire/GetWire): a repeat query
// served over the wire then skips XML marshalling entirely — the
// transport writes the cached bytes verbatim. Wire bytes live and die
// with their entry, so eviction and invalidation need no extra
// bookkeeping.
type Cache interface {
	Get(key string) ([]perfdata.Result, bool)
	Put(key string, results []perfdata.Result, cost time.Duration)
	// GetWire returns the entry's encoded response envelope. Present wire
	// counts as a hit; absence is not counted as a miss (the Get that
	// follows will count it).
	GetWire(key string) ([]byte, bool)
	// AttachWire stores encoded response bytes on an existing entry; it is
	// a no-op for unknown keys. Callers must not mutate wire afterwards.
	AttachWire(key string, wire []byte)
	Len() int
	Stats() CacheStats
	// Policy names the replacement policy, for service data and reports.
	Policy() string
}

// entry is one cached query result.
type entry struct {
	key     string
	results []perfdata.Result
	wire    []byte // encoded SOAP response envelope, when attached
	cost    time.Duration
	uses    int64
	elem    *list.Element // LRU position, when used
}

// baseCache carries the shared bookkeeping of all policies.
type baseCache struct {
	mu       sync.Mutex
	capacity int // <= 0 means unbounded
	entries  map[string]*entry
	stats    CacheStats
}

func newBase(capacity int) baseCache {
	return baseCache{capacity: capacity, entries: make(map[string]*entry)}
}

func (c *baseCache) lenLocked() int { return len(c.entries) }

// GetWire implements the wire-bytes lookup shared by the non-LRU policies
// (lruCache shadows it to refresh recency). A wire hit bumps the entry's
// use count so frequency- and cost-driven eviction see wire traffic too.
func (c *baseCache) GetWire(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.wire == nil {
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	return e.wire, true
}

// AttachWire implements Cache.
func (c *baseCache) AttachWire(key string, wire []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.wire = wire
	}
}

// lruCache evicts the least recently used entry.
type lruCache struct {
	baseCache
	order *list.List // front = most recent
}

// NewLRU creates an LRU cache. capacity <= 0 means unbounded — the
// behaviour of the paper's prototype, which never evicted.
func NewLRU(capacity int) Cache {
	return &lruCache{baseCache: newBase(capacity), order: list.New()}
}

func (c *lruCache) Policy() string { return "lru" }

func (c *lruCache) Get(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	c.order.MoveToFront(e.elem)
	return e.results, true
}

// GetWire shadows baseCache's to also refresh the entry's recency.
func (c *lruCache) GetWire(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.wire == nil {
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	c.order.MoveToFront(e.elem)
	return e.wire, true
}

func (c *lruCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.results = results
		e.wire = nil // new results invalidate the encoded envelope
		e.cost = cost
		c.order.MoveToFront(e.elem)
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		victim := c.order.Back()
		if victim != nil {
			v := victim.Value.(*entry)
			c.order.Remove(victim)
			delete(c.entries, v.key)
			c.stats.Evictions++
		}
	}
	e := &entry{key: key, results: results, cost: cost}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
}

func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// lfuCache evicts the least frequently used entry (ties broken by
// insertion order scan).
type lfuCache struct {
	baseCache
}

// NewLFU creates an LFU cache.
func NewLFU(capacity int) Cache {
	return &lfuCache{baseCache: newBase(capacity)}
}

func (c *lfuCache) Policy() string { return "lfu" }

func (c *lfuCache) Get(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	return e.results, true
}

func (c *lfuCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.results = results
		e.wire = nil // new results invalidate the encoded envelope
		e.cost = cost
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		c.evictLocked(func(a, b *entry) bool { return a.uses < b.uses })
	}
	c.entries[key] = &entry{key: key, results: results, cost: cost}
}

// evictLocked removes the minimum entry under less.
func (c *baseCache) evictLocked(less func(a, b *entry) bool) {
	var victim *entry
	for _, e := range c.entries {
		if victim == nil || less(e, victim) {
			victim = e
		}
	}
	if victim != nil {
		delete(c.entries, victim.key)
		c.stats.Evictions++
	}
}

func (c *lfuCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

func (c *lfuCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// costAwareCache evicts the entry that is cheapest to recompute,
// weighting the mapping-layer cost by use count: victims minimize
// cost × (1 + uses). This is the paper's future-work "cache replacement
// policy [that] could adjust dynamically" — keeping the SMG98-style
// minute-long queries cached even when short HPL queries are hotter.
type costAwareCache struct {
	baseCache
}

// NewCostAware creates a recomputation-cost-aware cache.
func NewCostAware(capacity int) Cache {
	return &costAwareCache{baseCache: newBase(capacity)}
}

func (c *costAwareCache) Policy() string { return "cost" }

func (c *costAwareCache) Get(key string) ([]perfdata.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	e.uses++
	return e.results, true
}

func (c *costAwareCache) Put(key string, results []perfdata.Result, cost time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.results = results
		e.wire = nil // new results invalidate the encoded envelope
		e.cost = cost
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		c.evictLocked(func(a, b *entry) bool {
			return a.cost*time.Duration(1+a.uses) < b.cost*time.Duration(1+b.uses)
		})
	}
	c.entries[key] = &entry{key: key, results: results, cost: cost}
}

func (c *costAwareCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

func (c *costAwareCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// NewCache builds a cache by policy name: "lru", "lfu", or "cost".
// Unknown names default to LRU.
func NewCache(policy string, capacity int) Cache {
	switch policy {
	case "lfu":
		return NewLFU(capacity)
	case "cost":
		return NewCostAware(capacity)
	default:
		return NewLRU(capacity)
	}
}
