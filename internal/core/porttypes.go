package core

import "pperfgrid/internal/wsdl"

// PPerfGrid semantic-layer operation names (Tables 1 and 2 of the paper).
const (
	// Application PortType.
	OpGetAppInfo         = "getAppInfo"
	OpGetNumExecs        = "getNumExecs"
	OpGetExecQueryParams = "getExecQueryParams"
	OpGetAllExecs        = "getAllExecs"
	OpGetExecs           = "getExecs"

	// Execution PortType.
	OpGetInfo         = "getInfo"
	OpGetFoci         = "getFoci"
	OpGetMetrics      = "getMetrics"
	OpGetTypes        = "getTypes"
	OpGetTimeStartEnd = "getTimeStartEnd"
	OpGetPR           = "getPR"
	// OpPublishPR is the write-path extension to Table 2: live ingestion
	// of new Performance Results into a running Execution instance (the
	// paper's future-work "data streamed in from a running application").
	OpPublishPR = "publishPR"

	// Manager PortType (internal service, section 5.3.1.4).
	OpGetExecutions = "getExecutions"
)

// Service type names.
const (
	ApplicationType = "Application"
	ExecutionType   = "Execution"
	ManagerType     = "Manager"
)

// ApplicationPortType reproduces Table 1: the operations and semantics of
// the PPerfGrid Application interface.
func ApplicationPortType() wsdl.PortType {
	return wsdl.PortType{Name: ApplicationType, Operations: []wsdl.Operation{
		wsdl.Op(OpGetAppInfo,
			"Returns general information about the application, possibly including application name, version, etc. Returns an array of string values, each element of which should contain a name and a value delimited by the '|' character."),
		wsdl.Op(OpGetNumExecs,
			"Returns the number of unique executions available for the application as an integer."),
		wsdl.Op(OpGetExecQueryParams,
			"Returns a list of attributes that describe executions, arguments or run data, for example. Each attribute has associated with it a set of values, representing all unique possible values for that attribute. Returns an array of string values, each element of which should contain a name and a set of values delimited by the '|' character."),
		wsdl.Op(OpGetAllExecs,
			"Returns an array of Grid Service Handles (GSHs) representing an Execution service instance for each unique execution record. Returns an array of string values, each element of which should be a properly formatted GSH."),
		wsdl.Op(OpGetExecs,
			"Returns an array of Grid Service Handles (GSHs) representing an Execution service instance for each execution record matching the attribute and value passed as parameters. Returns an array of string values, each element of which should be a properly formatted GSH.",
			wsdl.P("attribute"), wsdl.P("value")),
	}}
}

// ExecutionPortType reproduces Table 2: the operations and semantics of
// the PPerfGrid Execution interface.
func ExecutionPortType() wsdl.PortType {
	return wsdl.PortType{Name: ExecutionType, Operations: []wsdl.Operation{
		wsdl.Op(OpGetInfo,
			"Returns general information about the Execution. Returns an array of string values, each element of which should contain a name and a value delimited by the '|' character."),
		wsdl.Op(OpGetFoci,
			"Returns a list of all possible unique focus values for the Execution (no duplicates) as an array of strings. Foci refer to the nodes of the resource hierarchy (e.g. /Process/27 or /Code/MPI/MPI_Comm_rank)."),
		wsdl.Op(OpGetMetrics,
			"Returns a list of all possible unique metric values for the Execution (no duplicates) as an array of strings. Metric refers to the measurements recorded in the dataset (e.g. func_calls, msg_deliv_time)."),
		wsdl.Op(OpGetTypes,
			"Returns a list of all possible unique type values for the Execution (no duplicates) as an array of strings. Type refers to the performance tool used to collect the data."),
		wsdl.Op(OpGetTimeStartEnd,
			"Returns a list of two values, the first representing the start time of the Execution and the second representing the end time of the Execution, as an array of strings."),
		wsdl.Op(OpGetPR,
			"Returns a list of Performance Results that meet the criteria given by the parameter values as an array of strings. Parameters are one Metric, a start time, an end time, one Type, and one or more Foci.",
			wsdl.P("metric"), wsdl.P("startTime"), wsdl.P("endTime"), wsdl.P("type"), wsdl.PRep("focus")),
		wsdl.Op(OpPublishPR,
			"Publishes one or more Performance Results into the Execution's data store — the live-ingestion write path. Parameters are encoded Performance Results ('metric|focus|type|start-end|value', the getPR wire form). On success the results are durable, immediately visible to subsequent getPR queries (cached envelopes from before the write are never served), and the call returns the number of results published.",
			wsdl.PRep("result")),
		wsdl.Op(OpGetPRAsync,
			"Callback-model variant of getPR (the registry-callback model of the paper's future work): acknowledges immediately and delivers the encoded result set to the given NotificationSink as one DeliverNotification on the prResults topic, tagged with the request ID.",
			wsdl.P("requestID"), wsdl.P("sinkHandle"), wsdl.P("metric"), wsdl.P("startTime"), wsdl.P("endTime"), wsdl.P("type"), wsdl.PRep("focus")),
	}}
}

// ManagerPortType describes the internal Manager grid service: it is
// accessed by Application service instances, not by clients (the paper
// notes grid services "need not be accessed only in the traditional
// client-server model").
func ManagerPortType() wsdl.PortType {
	return wsdl.PortType{Name: ManagerType, Operations: []wsdl.Operation{
		wsdl.Op(OpGetExecutions,
			"Returns an Execution service instance GSH for each unique execution ID passed as a parameter, creating instances through the Execution factories (distributed across replica hosts by the configured policy) on first reference and returning cached GSHs thereafter.",
			wsdl.PRep("executionID")),
	}}
}

// ApplicationDefinition is the full WSDL definition of an Application
// service.
func ApplicationDefinition() *wsdl.Definition {
	return wsdl.New(ApplicationType, ApplicationPortType())
}

// ExecutionDefinition is the full WSDL definition of an Execution service.
func ExecutionDefinition() *wsdl.Definition {
	return wsdl.New(ExecutionType, ExecutionPortType())
}

// ManagerDefinition is the full WSDL definition of the Manager service.
func ManagerDefinition() *wsdl.Definition {
	return wsdl.New(ManagerType, ManagerPortType())
}
