package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pperfgrid/internal/perfdata"
)

func rs(v float64) []perfdata.Result {
	return []perfdata.Result{{Metric: "m", Focus: "/", Type: "t", Time: perfdata.TimeRange{Start: 0, End: 1}, Value: v}}
}

// bothImpls builds the sharded cache and the retained single-lock oracle
// with the same policy and entry capacity, for tests that pin behaviour
// common to both.
func bothImpls(policy string, capacity int) map[string]Cache {
	return map[string]Cache{
		"sharded":     NewCache(policy, capacity),
		"single-lock": NewCacheFromConfig(CacheConfig{Policy: policy, MaxEntries: capacity, SingleLock: true}),
	}
}

func TestCacheHitMiss(t *testing.T) {
	for _, policy := range []string{"lru", "lfu", "cost"} {
		for impl, c := range bothImpls(policy, 10) {
			if _, ok := c.Get("k"); ok {
				t.Errorf("%s/%s: hit on empty cache", policy, impl)
			}
			c.Put("k", rs(1), time.Millisecond)
			got, ok := c.Get("k")
			if !ok || got[0].Value != 1 {
				t.Errorf("%s/%s: Get after Put = %v, %v", policy, impl, got, ok)
			}
			s := c.Stats()
			if s.Hits != 1 || s.Misses != 1 {
				t.Errorf("%s/%s: stats = %+v", policy, impl, s)
			}
			if c.Len() != 1 {
				t.Errorf("%s/%s: Len = %d", policy, impl, c.Len())
			}
			if c.SizeBytes() <= 0 {
				t.Errorf("%s/%s: SizeBytes = %d after Put", policy, impl, c.SizeBytes())
			}
			if c.Config().Policy != policy {
				t.Errorf("%s/%s: Config().Policy = %q", policy, impl, c.Config().Policy)
			}
		}
	}
}

func TestCachePutOverwrites(t *testing.T) {
	for _, policy := range []string{"lru", "lfu", "cost"} {
		c := NewCache(policy, 2)
		c.Put("k", rs(1), 0)
		c.Put("k", rs(2), 0)
		got, _ := c.Get("k")
		if got[0].Value != 2 {
			t.Errorf("%s: overwrite failed", policy)
		}
		if c.Len() != 1 {
			t.Errorf("%s: Len = %d after overwrite", policy, c.Len())
		}
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewLRU(0)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), rs(float64(i)), 0)
	}
	if c.Len() != 1000 {
		t.Errorf("unbounded cache evicted: %d", c.Len())
	}
	if c.Stats().Evictions != 0 {
		t.Error("unbounded cache recorded evictions")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", rs(1), 0)
	c.Put("b", rs(2), 0)
	c.Get("a") // a is now most recent
	c.Put("c", rs(3), 0)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(2)
	c.Put("hot", rs(1), 0)
	c.Put("cold", rs(2), 0)
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	c.Put("new", rs(3), 0)
	if _, ok := c.Get("cold"); ok {
		t.Error("cold should have been evicted")
	}
	if _, ok := c.Get("hot"); !ok {
		t.Error("hot should have survived")
	}
}

func TestCostAwareKeepsExpensive(t *testing.T) {
	c := NewCostAware(2)
	c.Put("cheap", rs(1), time.Millisecond)
	c.Put("expensive", rs(2), time.Minute) // SMG98-style long query
	c.Put("new", rs(3), time.Second)
	if _, ok := c.Get("expensive"); !ok {
		t.Error("expensive entry evicted despite cost-aware policy")
	}
	if _, ok := c.Get("cheap"); ok {
		t.Error("cheap entry survived over expensive")
	}
}

func TestCostAwareWeighsUses(t *testing.T) {
	c := NewCostAware(2)
	c.Put("cheapHot", rs(1), time.Millisecond)
	// 2000 uses make the cheap entry worth ~2s of saved recomputation.
	for i := 0; i < 2000; i++ {
		c.Get("cheapHot")
	}
	c.Put("expensiveCold", rs(2), time.Second)
	c.Put("new", rs(3), time.Millisecond)
	if _, ok := c.Get("cheapHot"); !ok {
		t.Error("heavily used cheap entry evicted")
	}
}

func TestNewCacheDefaultsToLRU(t *testing.T) {
	if got := NewCache("bogus", 1).Policy(); got != "lru" {
		t.Errorf("default policy = %q", got)
	}
	if got := NewCache("lfu", 1).Policy(); got != "lfu" {
		t.Errorf("lfu = %q", got)
	}
	if got := NewCache("cost", 1).Policy(); got != "cost" {
		t.Errorf("cost = %q", got)
	}
}

func TestHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Error("empty hit rate nonzero")
	}
	s = CacheStats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func TestCacheConcurrent(t *testing.T) {
	for _, policy := range []string{"lru", "lfu", "cost"} {
		for impl, c := range bothImpls(policy, 64) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						k := fmt.Sprintf("k%d", i%100)
						if _, ok := c.Get(k); !ok {
							c.Put(k, rs(float64(i)), time.Duration(i))
						}
					}
				}(w)
			}
			wg.Wait()
			if c.Len() > 64 {
				t.Errorf("%s/%s: capacity exceeded: %d", policy, impl, c.Len())
			}
		}
	}
}

// Property: a bounded cache never exceeds its capacity and a Get right
// after a Put always hits.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		for _, policy := range []string{"lru", "lfu", "cost"} {
			for _, c := range bothImpls(policy, capacity) {
				for i, k := range keys {
					key := fmt.Sprintf("k%d", k)
					c.Put(key, rs(float64(i)), time.Duration(k))
					if _, ok := c.Get(key); !ok {
						return false
					}
					if c.Len() > capacity {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
