// Federation: the paper's core scenario — three organizations publish
// parallel-performance datasets stored in completely different formats
// (single-table RDBMS, flat ASCII text files, five-table star schema), and
// one analyst compares them through the uniform, virtual view that the
// Application/Execution grid services provide. Data heterogeneity, system
// heterogeneity, and location are all invisible at the client.
//
// Act two then re-runs the scenario the way a real grid behaves: through
// the scatter-gather engine, with one site blackholed and another turned
// into a straggler by the seeded chaos transport — and the analysis
// still completes, with explicit per-site annotations instead of a hang
// or an all-or-nothing failure.
//
// Run with:
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/compare"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/federation"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/registry"
	"pperfgrid/internal/viz"
)

func main() {
	// The data grid's registry — one per virtual organization.
	regCont := container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := regCont.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer regCont.Close()
	if _, err := registry.Deploy(regCont.Hosting(), registry.New()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry at %s\n\n", regCont.Host())

	// Three sites, three organizations, three storage formats.
	sites := []struct {
		org, contact, desc string
		wrapper            mapping.ApplicationWrapper
		name               string
	}{}
	hpl, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 16, Seed: 3}))
	if err != nil {
		log.Fatal(err)
	}
	rma, err := mapping.NewFlatFile(datagen.PrestaRMA(datagen.RMAConfig{Executions: 8, MessageSizes: 12, Seed: 3}))
	if err != nil {
		log.Fatal(err)
	}
	smg, err := mapping.NewStar(datagen.SMG98(datagen.SMG98Config{Executions: 4, Processes: 4, TimeBins: 8, Seed: 3}))
	if err != nil {
		log.Fatal(err)
	}
	sites = append(sites,
		struct {
			org, contact, desc string
			wrapper            mapping.ApplicationWrapper
			name               string
		}{"PSU", "pperfgrid@pdx.edu", "Linpack runs in a single-table PostgreSQL-style store", hpl, "HPL"},
		struct {
			org, contact, desc string
			wrapper            mapping.ApplicationWrapper
			name               string
		}{"LLNL", "presta@llnl.gov", "Presta RMA benchmark output as flat ASCII text files", rma, "PRESTA-RMA"},
		struct {
			org, contact, desc string
			wrapper            mapping.ApplicationWrapper
			name               string
		}{"UOregon", "vampir@cs.uoregon.edu", "SMG98 Vampir traces in a five-table star schema", smg, "SMG98"},
	)

	pub := registry.Connect(regCont.Host())
	for _, s := range sites {
		site, err := core.StartSite(core.SiteConfig{AppName: s.name, Wrappers: []mapping.ApplicationWrapper{s.wrapper}})
		if err != nil {
			log.Fatal(err)
		}
		defer site.Close()
		if err := pub.PublishOrganization(registry.Organization{Name: s.org, Contact: s.contact}); err != nil {
			log.Fatal(err)
		}
		if err := pub.PublishService(registry.ServiceEntry{
			Organization: s.org, Name: s.name, Description: s.desc,
			FactoryHandle: site.ApplicationFactoryHandle().String(),
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s published %-10s at %s\n", s.org, s.name, site.PrimaryHost())
	}

	// The analyst discovers every site and binds to all of them.
	c := client.New(regCont.Host())
	orgs, err := c.DiscoverOrganizations("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d organizations\n", len(orgs))
	for _, o := range orgs {
		svcs, err := c.DiscoverServices(o.Name)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range svcs {
			if _, err := c.Bind(s); err != nil {
				log.Fatal(err)
			}
		}
	}

	// One uniform walk over heterogeneous stores: for every binding, list
	// metadata and compute the mean of its headline metric across runs.
	headline := map[string]struct{ metric, typ string }{
		"HPL":        {"gflops", "hpl"},
		"PRESTA-RMA": {"bandwidth", "presta"},
		"SMG98":      {"excl_time", "vampir"},
	}
	var labels []string
	var values []float64
	for _, b := range c.Bindings() {
		info, err := b.AppInfo()
		if err != nil {
			log.Fatal(err)
		}
		n, err := b.NumExecs()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — %d executions\n", b.Key(), n)
		for _, kv := range info {
			if kv.Name == "description" {
				fmt.Printf("  %s\n", kv.Value)
			}
		}
		execs, err := b.QueryExecutions(nil)
		if err != nil {
			log.Fatal(err)
		}
		h := headline[b.Entry.Name]
		q := perfdata.Query{Metric: h.metric, Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: h.typ}
		results := client.QueryPerformanceResults(execs, q, client.ParallelOptions{})
		sum, count := 0.0, 0
		for _, r := range results {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			for _, res := range r.Results {
				sum += res.Value
				count++
			}
		}
		mean := 0.0
		if count > 0 {
			mean = sum / float64(count)
		}
		fmt.Printf("  mean %s over %d results: %.3f\n", h.metric, count, mean)
		labels = append(labels, fmt.Sprintf("%s %s", b.Entry.Name, h.metric))
		values = append(values, mean)
	}

	fmt.Println()
	fmt.Print(viz.BarChart("headline metric per federated site (mixed units)", labels, values, 40))
	fmt.Println("\nthree formats, three locations, one interface — the PPerfGrid virtual view")

	// ----- Act two: the same fleet through the scatter-gather engine. -----
	//
	// The walk above queried each site in turn and died on the first error.
	// A real grid loses sites mid-analysis, so route the fan-out through
	// internal/federation instead: concurrent per-site deadlines, retries
	// from a shared budget, hedged requests, and a circuit breaker — with a
	// Report that names exactly which sites answered and why the rest
	// didn't.
	fmt.Println("\n--- act two: scatter-gather with injected faults ---")

	transport, names, err := federation.Discover(c, "")
	if err != nil {
		log.Fatal(err)
	}
	chaos := federation.NewChaosTransport(transport, 42)
	engine := federation.New(chaos, federation.Config{PerSiteTimeout: 300 * time.Millisecond})

	// Presta bandwidth is published by every RMA execution; the other two
	// sites simply report zero observations for it — a federated query is
	// allowed to be sparse.
	q := perfdata.Query{Metric: "bandwidth", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "presta"}

	healthy := engine.Query(context.Background(), names, q)
	fmt.Printf("fault-free: %s\n", healthy.Summary())

	// Now blackhole one site and turn another into a straggler. The
	// federated query still returns, inside the deadline, with the healthy
	// answers intact and the casualties annotated.
	var dead, slow string
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "LLNL/"):
			dead = n
		case strings.HasPrefix(n, "UOregon/"):
			slow = n
		}
	}
	chaos.SetSiteFaults(dead, federation.SiteFaults{BlackholeRate: 1})
	chaos.SetSiteFaults(slow, federation.SiteFaults{Latency: 40 * time.Millisecond, LatencyJitter: 20 * time.Millisecond})
	fmt.Printf("\ninjected: %s blackholed, %s lagging ~40ms\n", dead, slow)

	report := engine.Query(context.Background(), names, q)
	fmt.Printf("faulted:    %s\n", report.Summary())
	for _, o := range report.Outcomes {
		note := ""
		if o.Err != nil {
			note = " — " + o.Err.Error()
		}
		fmt.Printf("  %-20s %-8s attempts=%d hedged=%v%s\n", o.Site, o.Status, o.Attempts, o.Hedged, note)
	}

	// The analysis layer rides the same engine: CollectFederated harvests
	// every observation the surviving sites produced and returns typed
	// per-site errors for the rest, instead of all-or-nothing.
	obs, oerrs, _ := compare.CollectFederated(context.Background(), engine, names, q)
	fmt.Printf("\ncompare.CollectFederated: %d observations harvested, %d site errors\n", len(obs), len(oerrs))
	for _, oe := range oerrs {
		fmt.Printf("  lost %s: retryable=%v timeout=%v\n", oe.Site, oe.Retryable, oe.Timeout)
	}
	fmt.Println("\npartial failure is an annotated answer, not a hang — the PPerfGrid federation layer")
}
