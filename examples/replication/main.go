// Replication: the paper's section 6.5 scalability mechanism in action. A
// data source replicated on two single-CPU hosts lets the PPerfGrid
// Manager interleave Execution service instances across them (ID 1 on
// host A, ID 2 on host B, ...), so a threaded client's parallel queries
// run on both CPUs at once. This example measures the same query batch
// against a one-host and a two-host deployment and reports the speedup.
//
// Run with:
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

const (
	executions = 32
	repeats    = 10 // per-thread repeats, as in the paper's load model
)

func main() {
	oneHost := measure(1)
	twoHost := measure(2)
	fmt.Printf("\nquery batch: %d Execution instances x %d repeats each\n", executions, repeats)
	fmt.Printf("  1 host  (non-optimized): %v\n", oneHost.Round(time.Millisecond))
	fmt.Printf("  2 hosts (optimized):     %v\n", twoHost.Round(time.Millisecond))
	fmt.Printf("  speedup: %.2fx (the paper's Figure 12 measured a 2.14x mean)\n",
		float64(oneHost)/float64(twoHost))
}

func measure(replicas int) time.Duration {
	// Each replica host gets its own copy of the data store — the paper's
	// "data source replicated on multiple hosts".
	dataset := datagen.HPL(datagen.HPLConfig{Executions: 124, Seed: 5})
	wrappers := make([]mapping.ApplicationWrapper, replicas)
	for i := range wrappers {
		w, err := mapping.NewWideTable(dataset)
		if err != nil {
			log.Fatal(err)
		}
		// Calibrate each query to ~1 ms of mapping work so the single CPU
		// per host is the bottleneck, as on the paper's 440 MHz servers.
		wrappers[i] = mapping.WithLatency(w, time.Millisecond, 0)
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName:    "HPL",
		Wrappers:   wrappers,
		Workers:    1, // one simulated CPU per host
		CachingOff: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	c := client.NewWithoutRegistry()
	app, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	execs, err := app.QueryExecutions(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-host site: Manager placed instances %v\n", replicas, site.Manager().PerHostCounts())

	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	start := time.Now()
	results := client.QueryPerformanceResults(execs[:executions], q, client.ParallelOptions{Repeats: repeats})
	elapsed := time.Since(start)
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	return elapsed
}
