// Analysis: the comparative-profiling workflows the paper defers to its
// PPerfDB integration, running over the PPerfGrid virtual view — a strong-
// scaling study of HPL grouped by process count, a metric-value filter on
// the execution set, and a per-MPI-function diff between two SMG98 traces.
//
// Run with:
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"pperfgrid/internal/client"
	"pperfgrid/internal/compare"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

func main() {
	scalingStudy()
	executionDiff()
}

// scalingStudy groups HPL runs by numprocesses and reports speedup and
// parallel efficiency of the gflops throughput.
func scalingStudy() {
	w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 48, Seed: 17}))
	if err != nil {
		log.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "HPL", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil {
		log.Fatal(err)
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	obs, err := compare.Collect(execs, q)
	if err != nil {
		log.Fatal(err)
	}

	points, err := compare.ScalingStudy(obs, "numprocesses", compare.Throughput)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(compare.RenderScaling("gflops", "numprocesses", points))

	// The future-work metric-value filter: which runs beat 20 gflops?
	fast, err := compare.FilterByValue(obs, ">", 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d of %d executions exceed 20 gflops:", len(fast), len(obs))
	for _, o := range fast {
		fmt.Printf(" %s(np=%s)", o.ExecID, o.Attrs["numprocesses"])
	}
	fmt.Println()
}

// executionDiff compares per-MPI-function exclusive time between two SMG98
// traces — the comparative-profiling core of the PPerfDB line of work.
func executionDiff() {
	d := datagen.SMG98(datagen.SMG98Config{Executions: 2, Processes: 2, TimeBins: 6, Seed: 17})
	w, err := mapping.NewStar(d)
	if err != nil {
		log.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{AppName: "SMG98", Wrappers: []mapping.ApplicationWrapper{w}})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory("SMG98", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	execs, err := b.QueryExecutions(nil)
	if err != nil || len(execs) < 2 {
		log.Fatalf("executions: %d, %v", len(execs), err)
	}
	q := perfdata.Query{Metric: "excl_time", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "vampir"}
	obs, err := compare.Collect(execs[:2], q)
	if err != nil {
		log.Fatal(err)
	}
	deltas := compare.DiffExecutions(obs[0], obs[1])
	fmt.Println()
	fmt.Print(compare.RenderDiff("run "+obs[0].ExecID, "run "+obs[1].ExecID, deltas, 10))
	fmt.Println("\n(per-function exclusive-time changes, largest movers first)")
}
