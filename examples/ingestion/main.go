// Ingestion: the write path opened by PublishResults. An instrumented
// application streams measurements over the SOAP wire into a live star
// (minidb) store while an analyst queries the same Execution service —
// every read after a publish sees the new rows, because each write
// advances the instance's cache epoch and re-indexes incrementally.
//
// Run with:
//
//	go run ./examples/ingestion
package main

import (
	"fmt"
	"log"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
)

func main() {
	// The site fronts a relational star store seeded with one SMG98 run
	// that is still in flight: the first 20 seconds are already loaded.
	dataset := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 4, TimeBins: 20, Seed: 7})
	store, err := mapping.NewStar(dataset)
	if err != nil {
		log.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName:  "SMG98-live",
		Wrappers: []mapping.ApplicationWrapper{store},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	// Both the analyst and the application's monitor go through the
	// wire: bind the factory, locate the in-flight execution.
	c := client.NewWithoutRegistry()
	app, err := c.BindFactory("SMG98-live", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	execs, err := app.QueryExecutions(nil)
	if err != nil || len(execs) != 1 {
		log.Fatalf("executions: %d, %v", len(execs), err)
	}
	exec := execs[0]

	q := perfdata.Query{
		Metric: "func_calls",
		Foci:   []string{"/Process/0"},
		Time:   perfdata.TimeRange{Start: 0, End: 3600},
		Type:   perfdata.UndefinedType,
	}
	before, err := exec.PerformanceResults(q) // warms the instance cache
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyst's first read: %d results for /Process/0\n", len(before))

	// The application emits its next measurement interval: publishPR
	// carries encoded results over the same SOAP wire the reads use.
	// The star wrapper inserts the rows, interns any new dimension
	// values, and maintains the hash indexes incrementally (ordered
	// range indexes are marked stale and rebuilt lazily on next use).
	var batch []perfdata.Result
	for p := 0; p < 4; p++ {
		batch = append(batch, perfdata.Result{
			Metric: "func_calls",
			Focus:  fmt.Sprintf("/Process/%d/Code/MPI/MPI_Allreduce", p),
			Type:   "vampir",
			Time:   perfdata.TimeRange{Start: 20, End: 21},
			Value:  float64(8 + p),
		})
	}
	n, err := exec.PublishResults(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application published %d results\n", n)

	// The publish bumped the instance's epoch, so the cached pre-write
	// envelope is structurally unreachable: this read misses, refetches,
	// and includes the new interval.
	after, err := exec.PerformanceResults(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyst's re-read: %d results (%d new)\n", len(after), len(after)-len(before))

	// The write generation is visible as service data.
	for _, key := range []string{"writable", "epoch", "publishes", "cacheInvalidated"} {
		vals, err := exec.Call(ogsi.OpFindServiceData, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s = %s\n", key, vals[0])
	}
}
