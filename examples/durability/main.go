// Durability: the disk-resident segment engine surviving a restart. A
// site serves an SMG98 star store rooted in a data directory; an
// application publishes results over the wire; the whole site then shuts
// down and a new process image opens the same directory. Recovery
// replays the WAL tail, restores the segment checkpoint, and the
// analyst's re-query sees the published rows — no dataset reload.
//
// Run with:
//
//	go run ./examples/durability
package main

import (
	"fmt"
	"log"
	"os"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/minidb"
	"pperfgrid/internal/perfdata"
)

func main() {
	dir, err := os.MkdirTemp("", "pperfgrid-durability-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dataset := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 4, TimeBins: 20, Seed: 7})
	q := perfdata.Query{
		Metric: "func_calls",
		Foci:   []string{"/Process/0"},
		Time:   perfdata.TimeRange{Start: 0, End: 3600},
		Type:   perfdata.UndefinedType,
	}

	// --- First process lifetime: load, publish, shut down. ---------------
	// The star store roots its segment files and WAL in dir; the dataset
	// load runs as one bulk-load transaction (segments + one checkpoint,
	// not one fsync per insert batch).
	before, err := serve(dataset, dir, func(exec *client.ExecutionRef) (int, error) {
		rs, err := exec.PerformanceResults(q)
		if err != nil {
			return 0, err
		}
		fmt.Printf("first lifetime: %d results for /Process/0\n", len(rs))

		// Publish one more measurement interval. Each publish is a
		// durable commit: its WAL records are fsynced (riding the group
		// commit leader) before the call returns.
		var batch []perfdata.Result
		for p := 0; p < 4; p++ {
			batch = append(batch, perfdata.Result{
				Metric: "func_calls",
				Focus:  fmt.Sprintf("/Process/%d/Code/MPI/MPI_Allreduce", p),
				Type:   "vampir",
				Time:   perfdata.TimeRange{Start: 20, End: 21},
				Value:  float64(8 + p),
			})
		}
		if _, err := exec.PublishResults(batch); err != nil {
			return 0, err
		}
		fmt.Printf("published %d results, shutting the site down\n", len(batch))

		rs, err = exec.PerformanceResults(q)
		if err != nil {
			return 0, err
		}
		return len(rs), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Second process lifetime: recover and re-query. ------------------
	// Opening the same directory finds the recovered schema, so the
	// wrapper skips the dataset load entirely: the rows — including the
	// publish — come back from the checkpoint, segments, and WAL tail.
	after, err := serve(dataset, dir, func(exec *client.ExecutionRef) (int, error) {
		rs, err := exec.PerformanceResults(q)
		if err != nil {
			return 0, err
		}
		return len(rs), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after restart: %d results (was %d before shutdown)\n", after, before)
	if after != before {
		log.Fatalf("published rows lost across restart: %d != %d", after, before)
	}
	fmt.Println("published rows survived the restart")
}

// serve runs one site lifetime over the disk-rooted star store: open (or
// recover) the store, start the site, run fn against the one execution,
// then close everything down.
func serve(d *datagen.Dataset, dir string, fn func(*client.ExecutionRef) (int, error)) (int, error) {
	store, err := mapping.NewStarWithOptions(d, minidb.Options{Dir: dir})
	if err != nil {
		return 0, err
	}
	defer store.Close()

	st := store.EngineStats()
	fmt.Printf("opened %s: %d sealed rows in %d segments, %d WAL bytes\n",
		dir, st.SealedRows, st.Segments, st.WALBytes)

	site, err := core.StartSite(core.SiteConfig{
		AppName:  "SMG98-durable",
		Wrappers: []mapping.ApplicationWrapper{store},
	})
	if err != nil {
		return 0, err
	}
	defer site.Close()

	c := client.NewWithoutRegistry()
	app, err := c.BindFactory("SMG98-durable", site.ApplicationFactoryHandle())
	if err != nil {
		return 0, err
	}
	execs, err := app.QueryExecutions(nil)
	if err != nil {
		return 0, err
	}
	if len(execs) != 1 {
		return 0, fmt.Errorf("executions: got %d, want 1", len(execs))
	}
	return fn(execs[0])
}
