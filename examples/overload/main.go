// Overload: the C10k front door in action. A single-worker site (the
// paper's one-CPU Sun Ultra host) with a tight admission queue is hit by
// a saturating burst of concurrent clients. Instead of queueing without
// bound — every client's latency growing until something times out — the
// container sheds the excess instantly with a typed overload fault:
// HTTP 503, soap.FaultOverloaded, and a Retry-After hint sized from the
// live backlog. The shed clients observe microsecond-scale rejections
// while admitted work completes at full speed.
//
// Act two shows the client half: the federation engine classifies the
// shed as retryable-with-backoff, honors the server's Retry-After hint
// instead of the generic schedule, and the query that was turned away
// succeeds on the retry. Act three drains the site gracefully: in-flight
// work finishes, late arrivals are shed, and the listener closes.
//
// Run with:
//
//	go run ./examples/overload
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/federation"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/soap"
)

func main() {
	// One simulated CPU, a 4-deep admission queue, and a 10ms queue-wait
	// budget: the front-door configuration the soak bench sweeps.
	d := datagen.SMG98(datagen.SMG98Config{Executions: 1, Processes: 8, TimeBins: 32, Seed: 7})
	w, err := mapping.NewStar(d)
	if err != nil {
		log.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName: d.Name,
		// The calibrated ms-scale Mapping Layer of the paper's testbed —
		// with it, a burst genuinely saturates the single worker.
		Wrappers:   []mapping.ApplicationWrapper{mapping.WithLatency(w, 2*time.Millisecond, 0)},
		Workers:    1,
		QueueDepth: 4,
		QueueWait:  10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cont := site.Containers()[0]
	fmt.Printf("site %q up on %s: workers=1, queue depth=4, queue wait=10ms\n\n", d.Name, site.PrimaryHost())

	c := client.NewWithoutRegistry()
	b, err := c.BindFactory(d.Name, site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	refs, err := b.QueryExecutions(nil)
	if err != nil || len(refs) == 0 {
		log.Fatalf("resolve execution: %v", err)
	}
	exec := refs[0]
	tr := d.Execs[0].Time

	// ---- Act one: a saturating burst against the front door ----------
	fmt.Println("act one: 64 concurrent getPR queries against one worker")
	query := func(i int) perfdata.Query {
		return perfdata.Query{
			Metric: "func_calls",
			Foci:   []string{fmt.Sprintf("/Process/%d", i%8)},
			// Distinct narrow time slices: every query is a genuine
			// Mapping-Layer fetch, not a cache hit.
			Time: perfdata.TimeRange{Start: tr.Start + float64(i)*1e-9, End: tr.Start + (tr.End-tr.Start)/32},
			Type: "vampir",
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		okCount  int
		shedLats []time.Duration
		hints    []time.Duration
	)
	start := time.Now()
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := exec.PerformanceResults(query(i))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if hint, ok := soap.AsOverload(err); ok {
				shedLats = append(shedLats, lat)
				hints = append(hints, hint)
			} else if err == nil {
				okCount++
			}
		}(i)
	}
	wg.Wait()
	burst := time.Since(start)

	var worstShed time.Duration
	for _, l := range shedLats {
		if l > worstShed {
			worstShed = l
		}
	}
	fmt.Printf("  burst completed in %v\n", burst.Round(time.Millisecond))
	fmt.Printf("  served: %d (each a ~2ms Mapping-Layer fetch, serialized on 1 worker)\n", okCount)
	fmt.Printf("  shed:   %d with typed overload faults (server counted %d)\n", len(shedLats), cont.Sheds())
	fmt.Printf("  worst client-observed shed round trip: %v — rejection, not queueing\n", worstShed.Round(100*time.Microsecond))
	if len(hints) > 0 {
		fmt.Printf("  server's Retry-After hint on the last shed: %v (sized from live backlog)\n\n", hints[len(hints)-1])
	}

	// ---- Act two: the client half honors Retry-After -----------------
	fmt.Println("act two: a federated query arrives mid-burst, is shed, and retries after the hint")
	ft := federation.NewBindingTransport()
	ft.AddSite("smg98", b)
	engine := federation.New(ft, federation.Config{
		PerSiteTimeout:     5 * time.Second,
		DisableHedging:     true,
		DisableBreaker:     true,
		RetryBudget:        12,
		MaxAttemptsPerSite: 8,
	})

	// Re-saturate the worker for a bounded window: long enough that the
	// federated query's first attempts are shed, short enough that a
	// backed-off retry lands after the burst subsides.
	stop := make(chan struct{})
	time.AfterFunc(120*time.Millisecond, func() { close(stop) })
	var bg sync.WaitGroup
	for i := 0; i < 8; i++ {
		bg.Add(1)
		go func(i int) {
			defer bg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = exec.PerformanceResults(query(1000 + i*100000 + j))
			}
		}(i)
	}

	r := engine.Query(context.Background(), []string{"smg98"}, perfdata.Query{
		Metric: "func_calls", Time: tr, Type: "vampir",
	})
	bg.Wait()
	o := r.Outcome("smg98")
	st := engine.Stats()
	fmt.Printf("  outcome: %s after %d attempt(s); engine counted %d overload shed(s), %d retri(es)\n",
		o.Status, o.Attempts, st.Overloads, st.Retries)
	if o.Status != federation.StatusOK {
		fmt.Printf("  (site stayed saturated through the whole retry budget: %v)\n", o.Err)
	}
	fmt.Println()

	// ---- Act three: graceful drain -----------------------------------
	fmt.Println("act three: graceful drain")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	t0 := time.Now()
	if err := site.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Printf("  drained in %v: in-flight work finished, cursors released, listener closed\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  total requests %d, served without fault %d, shed %d — and zero faults counted as failures: %d\n",
		cont.Requests(), cont.Requests()-cont.Faults()-cont.Sheds(), cont.Sheds(), cont.Faults())
}
