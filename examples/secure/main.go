// Secure exchange: the paper's future-work GSI integration. A virtual
// organization shares a trust root (the Authority); every SOAP request is
// HMAC-signed, the site verifies signatures and applies an authorization
// policy, and an analyst delegates a short-lived proxy credential to a
// batch job — single sign-on without sharing the long-term secret.
//
// Run with:
//
//	go run ./examples/secure
package main

import (
	"fmt"
	"log"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/gsi"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
)

func main() {
	// The virtual organization's trust root.
	authority, err := gsi.NewAuthority([]byte("pperfgrid-vo-master-key"))
	if err != nil {
		log.Fatal(err)
	}
	verifier := gsi.NewVerifier(authority)
	policy := gsi.AllowIdentities("analyst@pdx.edu")

	// A site that rejects unsigned or unauthorized requests before
	// dispatch.
	w, err := mapping.NewWideTable(datagen.HPL(datagen.HPLConfig{Executions: 8, Seed: 11}))
	if err != nil {
		log.Fatal(err)
	}
	site, err := core.StartSite(core.SiteConfig{
		AppName:      "HPL",
		Wrappers:     []mapping.ApplicationWrapper{w},
		Interceptors: []container.Interceptor{gsi.Interceptor(verifier, policy)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()
	fmt.Printf("secured site at %s\n\n", site.PrimaryHost())

	// 1. An anonymous client is rejected.
	anon := client.NewWithoutRegistry()
	if _, err := anon.BindFactory("HPL", site.ApplicationFactoryHandle()); err != nil {
		fmt.Printf("anonymous client: rejected (%v)\n", err)
	}

	// 2. An unauthorized identity signs correctly but fails policy.
	mallory, err := authority.Issue("mallory@example.org")
	if err != nil {
		log.Fatal(err)
	}
	mc := client.NewWithoutRegistry()
	mc.SetCredential(mallory.HeaderProvider())
	if _, err := mc.BindFactory("HPL", site.ApplicationFactoryHandle()); err != nil {
		fmt.Printf("unauthorized identity: rejected (%v)\n", err)
	}

	// 3. The authorized analyst works end to end.
	analyst, err := authority.Issue("analyst@pdx.edu")
	if err != nil {
		log.Fatal(err)
	}
	ac := client.NewWithoutRegistry()
	ac.SetCredential(analyst.HeaderProvider())
	app, err := ac.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	execs, err := app.QueryExecutions(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalyst: bound and found %d executions\n", len(execs))

	// 4. The analyst delegates a 30-second proxy to a batch job; the job
	//    queries with the proxy, never holding the long-term credential.
	proxy := analyst.Delegate(30 * time.Second)
	job := client.NewWithoutRegistry()
	job.SetCredential(proxy.HeaderProvider())
	japp, err := job.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	jexecs, err := japp.QueryExecutions([]client.AttrQuery{{Attribute: "numprocesses", Value: "2"}})
	if err != nil {
		log.Fatal(err)
	}
	q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
	results := client.QueryPerformanceResults(jexecs, q, client.ParallelOptions{})
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		info, _ := r.Exec.Info()
		fmt.Printf("batch job (delegated proxy): execution %s gflops = %.3f\n",
			info[0].Value, r.Results[0].Value)
	}

	// 5. An expired proxy is rejected.
	stale := analyst.Delegate(-time.Second)
	sc := client.NewWithoutRegistry()
	sc.SetCredential(stale.HeaderProvider())
	if _, err := sc.BindFactory("HPL", site.ApplicationFactoryHandle()); err != nil {
		fmt.Printf("\nexpired proxy: rejected (%v)\n", err)
	}
}
