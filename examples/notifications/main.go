// Notifications: the paper's future-work streaming scenario. Performance
// data for a run is "streamed from a running application"; the Execution
// Grid service notifies subscribed clients each time the data store is
// updated, and the clients re-query to pick up fresh results — a push
// model instead of polling.
//
// Run with:
//
//	go run ./examples/notifications
package main

import (
	"fmt"
	"log"
	"time"

	"pperfgrid/internal/client"
	"pperfgrid/internal/container"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/ogsi"
	"pperfgrid/internal/perfdata"
)

func main() {
	// A live run: the Memory wrapper is mutable, standing in for a data
	// store that a running application keeps appending to.
	dataset := datagen.HPL(datagen.HPLConfig{Executions: 1, Seed: 13})
	live := mapping.NewMemory(dataset)
	site, err := core.StartSite(core.SiteConfig{
		AppName:       "HPL-live",
		Wrappers:      []mapping.ApplicationWrapper{live},
		Notifications: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	// The consumer binds and finds the in-flight execution.
	c := client.NewWithoutRegistry()
	app, err := c.BindFactory("HPL-live", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	execs, err := app.QueryExecutions(nil)
	if err != nil || len(execs) != 1 {
		log.Fatalf("executions: %d, %v", len(execs), err)
	}
	exec := execs[0]

	// The consumer hosts a NotificationSink in its own container and
	// subscribes it to the Execution's update topic.
	sinkCont := container.New(ogsi.NewHosting("pending:0"), container.Options{})
	if err := sinkCont.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer sinkCont.Close()
	updates := make(chan string, 8)
	sinkIn, err := container.DeploySink(sinkCont.Hosting(), ogsi.SinkFunc(func(topic, msg string) error {
		updates <- msg
		return nil
	}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := exec.Call(ogsi.OpSubscribe, core.UpdatesTopic, sinkIn.Handle().String()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscribed to execution updates")

	query := func() {
		q := perfdata.Query{Metric: "gflops", Time: perfdata.TimeRange{Start: 0, End: 1e9}, Type: "hpl"}
		rs, err := exec.PerformanceResults(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  current gflops results: %d", len(rs))
		for _, r := range rs {
			fmt.Printf("  [%s: %.3f]", r.Time.Encode(), r.Value)
		}
		fmt.Println()
	}
	fmt.Println("initial state:")
	query()

	// The running application appends two more measurement intervals; the
	// site pushes an update notification after each.
	for phase := 1; phase <= 2; phase++ {
		appendPhase(live, phase)
		site.NotifyUpdate("100", fmt.Sprintf("phase %d results appended", phase))
		select {
		case msg := <-updates:
			fmt.Printf("\npush notification: %q — re-querying\n", msg)
			query()
		case <-time.After(3 * time.Second):
			log.Fatal("notification never arrived")
		}
	}
	fmt.Println("\nstreaming updates delivered by push, no polling required")
}

// appendPhase mutates the live store the way a running application's
// measurement phases would.
func appendPhase(m *mapping.Memory, phase int) {
	e := &m.Execs[0]
	var lastGflops float64
	for _, r := range e.Results {
		if r.Metric == "gflops" {
			lastGflops = r.Value
		}
	}
	start := e.Time.End
	end := start + 30
	e.Time.End = end
	e.Results = append(e.Results, perfdata.Result{
		Metric: "gflops",
		Focus:  "/",
		Type:   "hpl",
		Time:   perfdata.TimeRange{Start: start, End: end},
		Value:  lastGflops * (1 + 0.05*float64(phase)),
	})
}
