// Quickstart: stand up one PPerfGrid site over a synthetic HPL dataset and
// walk the paper's Figure 3 flow end to end — bind to the Application
// factory, create an Application Grid service instance, query it for
// Executions, bind to the returned Execution instances, and query them for
// Performance Results, finishing with a Figure 11-style chart.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pperfgrid/internal/client"
	"pperfgrid/internal/core"
	"pperfgrid/internal/datagen"
	"pperfgrid/internal/mapping"
	"pperfgrid/internal/perfdata"
	"pperfgrid/internal/viz"
)

func main() {
	// 1. The Data Layer + Mapping Layer: an HPL-shaped dataset in a
	//    single-table relational store behind its SQL wrapper.
	dataset := datagen.HPL(datagen.HPLConfig{Executions: 24, Seed: 7})
	wrapper, err := mapping.NewWideTable(dataset)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The Semantic + Services Layers: one PPerfGrid site hosting the
	//    Application and Execution grid services over HTTP/SOAP.
	site, err := core.StartSite(core.SiteConfig{
		AppName:  "HPL",
		Wrappers: []mapping.ApplicationWrapper{wrapper},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()
	fmt.Printf("site up at %s\n", site.PrimaryHost())
	fmt.Printf("application factory: %s\n\n", site.ApplicationFactoryHandle())

	// 3. The Virtualization Layer: a client binds to the factory and
	//    creates an Application service instance (Figure 3, steps 2a-2c).
	c := client.NewWithoutRegistry()
	app, err := c.BindFactory("HPL", site.ApplicationFactoryHandle())
	if err != nil {
		log.Fatal(err)
	}
	info, err := app.AppInfo()
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range info {
		fmt.Printf("%s: %s\n", kv.Name, kv.Value)
	}

	// 4. Attribute discovery, then a batched execution query
	//    (steps 3a-3i): all runs on 2 or 4 processes.
	params, err := app.ExecQueryParams()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nqueryable attributes:")
	for _, p := range params {
		fmt.Printf("  %s (%d values)\n", p.Name, len(p.Values))
	}
	execs, err := app.QueryExecutions([]client.AttrQuery{
		{Attribute: "numprocesses", Value: "2"},
		{Attribute: "numprocesses", Value: "4"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d executions matched numprocesses in {2, 4}\n", len(execs))

	// 5. Performance Result queries, one goroutine per Execution instance
	//    (steps 4a-4f).
	q := perfdata.Query{
		Metric: "gflops",
		Time:   perfdata.TimeRange{Start: 0, End: 1e9},
		Type:   "hpl",
	}
	results := client.QueryPerformanceResults(execs, q, client.ParallelOptions{})

	labels := make([]string, 0, len(results))
	values := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("query %s: %v", r.Exec.Handle, r.Err)
		}
		ri, err := r.Exec.Info()
		if err != nil {
			log.Fatal(err)
		}
		labels = append(labels, ri[0].Value)
		values = append(values, r.Results[0].Value)
	}

	// 6. Visualization (Figure 11).
	fmt.Println()
	fmt.Print(viz.BarChart("gflops per execution", labels, values, 48))
}
